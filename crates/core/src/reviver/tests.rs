use super::*;
use crate::controller::{Controller, WriteResult};
use crate::error::BuilderError;
use wlr_base::{Geometry, Pa, PageId};
use wlr_pcm::{Ecp, PcmDevice};
use wlr_wl::{NoWearLeveling, RandomizerKind, SecurityRefresh, StartGap, WearLeveler};

const N: u64 = 256; // 4 pages of 64 blocks

fn geo() -> Geometry {
    Geometry::builder().num_blocks(N).build().unwrap()
}

fn device(endurance: f64, extra: u64, seed: u64) -> PcmDevice {
    PcmDevice::builder(geo())
        .extra_blocks(extra)
        .endurance_mean(endurance)
        .endurance_cov(0.2)
        .seed(seed)
        .ecc(Box::new(Ecp::ecp6()))
        .track_contents(true)
        .build()
}

fn sg(psi: u64, seed: u64) -> Box<dyn WearLeveler> {
    Box::new(
        StartGap::builder(N)
            .gap_interval(psi)
            .randomizer(RandomizerKind::Feistel { seed })
            .build(),
    )
}

fn checked(endurance: f64, psi: u64, seed: u64) -> RevivedController {
    RevivedController::builder(device(endurance, 1, seed), sg(psi, seed))
        .check_invariants(true)
        .build()
}

/// Minimal OS stand-in for driving the controller directly: tracks
/// retired pages so tests honor the §III-A contract (software never
/// touches a retired page — the simulator's page table enforces this
/// in the full stack).
struct OsSim {
    retired: std::collections::HashSet<u64>,
}

impl OsSim {
    fn new() -> Self {
        OsSim {
            retired: Default::default(),
        }
    }

    /// A software-accessible PA below `n`, or `None` if none is left.
    fn pick_pa(&self, rng: &mut wlr_base::rng::Rng, n: u64) -> Option<Pa> {
        for _ in 0..256 {
            let pa = rng.gen_range(n);
            if !self.retired.contains(&(pa / 64)) {
                return Some(Pa::new(pa));
            }
        }
        None
    }

    fn accessible(&self, pa: Pa) -> bool {
        !self.retired.contains(&(pa.index() / 64))
    }

    /// Standard exception handling: retire the page and grant it.
    fn retire(&mut self, ctl: &mut RevivedController, rep: Pa) {
        let page = ctl.geometry().page_of(rep);
        self.retired.insert(page.index());
        ctl.on_page_retired(page);
    }

    fn grant(&mut self, ctl: &mut RevivedController, page: PageId) {
        self.retired.insert(page.index());
        ctl.on_page_retired(page);
    }
}

#[test]
fn healthy_operation_is_one_access_per_request() {
    let mut ctl = checked(1e9, 10, 1);
    for i in 0..500u64 {
        assert_eq!(ctl.write(Pa::new(i % N), i), WriteResult::Ok);
    }
    for i in 0..100u64 {
        ctl.read(Pa::new(i));
    }
    let s = ctl.request_stats();
    assert_eq!(s.requests, 600);
    assert_eq!(s.accesses, 600, "no failures -> exactly one access each");
    assert_eq!(ctl.linked_blocks(), 0);
}

#[test]
fn data_round_trips_through_migrations() {
    let mut ctl = checked(1e9, 3, 2);
    // Write distinct tags everywhere, interleaved with migrations.
    for round in 0..4u64 {
        for i in 0..N {
            assert_eq!(ctl.write(Pa::new(i), round * N + i), WriteResult::Ok);
        }
    }
    for i in 0..N {
        assert_eq!(ctl.read(Pa::new(i)), 3 * N + i, "PA {i} corrupted");
    }
}

#[test]
fn first_failure_reports_then_links() {
    let mut ctl = checked(300.0, 1_000_000, 3); // no migrations
    let pa = Pa::new(5);
    let mut reported = false;
    for i in 0..10_000u64 {
        match ctl.write(pa, i) {
            WriteResult::Ok => {}
            WriteResult::ReportFailure(rep) => {
                assert_eq!(rep, pa);
                ctl.on_page_retired(ctl.geometry().page_of(rep));
                reported = true;
                break;
            }
            other => unreachable!("unexpected write result: {other:?}"),
        }
    }
    assert!(reported, "hammering must eventually fail the block");
    assert_eq!(ctl.counters().real_reports, 1);
    assert_eq!(ctl.counters().spare_grants, 1);
    // 64-block page, 4 pointer blocks -> 60 spares.
    assert_eq!(ctl.spare_pas(), 60);
    // The block itself gets linked on the next touch of that DA...
    // which is unreachable now (its page retired); instead verify
    // that subsequent failures elsewhere are hidden without reports.
    let pa2 = Pa::new(200);
    for i in 0..10_000u64 {
        assert_eq!(ctl.write(pa2, i), WriteResult::Ok, "failure {i} not hidden");
        if ctl.linked_blocks() > 0 {
            break;
        }
    }
    assert!(ctl.linked_blocks() > 0, "second failure should link");
    assert_eq!(ctl.counters().real_reports, 1, "no further OS reports");
}

#[test]
fn reads_of_failed_blocks_resolve_through_shadow() {
    let mut ctl = checked(300.0, 1_000_000, 4);
    let pa = Pa::new(130);
    // Pre-grant a page so the failure is hidden immediately.
    ctl.on_page_retired(PageId::new(0));
    let mut last = 0;
    for i in 1..20_000u64 {
        match ctl.write(pa, i) {
            WriteResult::Ok => last = i,
            _ => panic!("failure should be hidden"),
        }
        if ctl.linked_blocks() > 0 {
            break;
        }
    }
    assert!(ctl.linked_blocks() > 0);
    assert_eq!(ctl.read(pa), last, "shadow must serve the read");
    // A failed-block read costs two accesses uncached (pointer+shadow).
    ctl.reset_request_stats();
    ctl.read(pa);
    assert_eq!(ctl.request_stats().accesses, 2);
}

#[test]
fn cache_reduces_failed_block_access_to_one() {
    let dev = device(300.0, 1, 5);
    let mut ctl = RevivedController::builder(dev, sg(1_000_000, 5))
        .check_invariants(true)
        .cache_bytes(1024)
        .build();
    ctl.on_page_retired(PageId::new(0));
    let pa = Pa::new(130);
    for i in 1..20_000u64 {
        ctl.write(pa, i);
        if ctl.linked_blocks() > 0 {
            break;
        }
    }
    assert!(ctl.linked_blocks() > 0);
    ctl.read(pa); // populate cache
    ctl.reset_request_stats();
    ctl.read(pa);
    assert_eq!(
        ctl.request_stats().accesses,
        1,
        "cache hit should hide the pointer read"
    );
}

#[test]
fn chains_stay_one_step_under_sustained_hammering() {
    // Low endurance + migrations: shadows keep dying; chains must stay
    // one-step (checked by invariants after every write).
    let mut ctl = checked(150.0, 7, 6);
    let mut os = OsSim::new();
    os.grant(&mut ctl, PageId::new(3));
    let mut rng = wlr_base::rng::Rng::seed_from(99);
    for i in 0..60_000u64 {
        let Some(pa) = os.pick_pa(&mut rng, N) else {
            break;
        };
        match ctl.write(pa, i) {
            WriteResult::Ok => {}
            WriteResult::ReportFailure(rep) => {
                os.retire(&mut ctl, rep);
            }
            other => unreachable!("unexpected write result: {other:?}"),
        }
        if ctl.spare_pas() == 0 && ctl.linked_blocks() > 30 {
            break; // plenty of failure handling exercised
        }
    }
    assert!(ctl.counters().links > 0);
    ctl.assert_invariants();
}

#[test]
fn switching_creates_loops() {
    let mut ctl = checked(150.0, 1_000_000, 7);
    let mut os = OsSim::new();
    os.grant(&mut ctl, PageId::new(0));
    // Hammer one PA: its block dies, then its shadow dies, forcing a
    // switch (Fig 2c) which leaves a loop block behind. If the
    // hammered page itself retires, move to the next accessible PA.
    let mut rng = wlr_base::rng::Rng::seed_from(70);
    let mut pa = Pa::new(100);
    for i in 0..200_000u64 {
        if !os.accessible(pa) {
            pa = os.pick_pa(&mut rng, N).expect("space left");
        }
        match ctl.write(pa, i) {
            WriteResult::Ok => {}
            WriteResult::ReportFailure(rep) => {
                os.retire(&mut ctl, rep);
            }
            other => unreachable!("unexpected write result: {other:?}"),
        }
        if ctl.counters().switches > 0 {
            break;
        }
    }
    assert!(ctl.counters().switches > 0, "no switch ever happened");
    assert!(ctl.loop_blocks() > 0, "a switch must leave a loop behind");
    ctl.assert_invariants();
}

#[test]
fn suspension_sacrifices_next_write_and_resumes() {
    // Tiny endurance and fast migrations with NO spare pages: a
    // migration soon hits a failure, suspends, and the next software
    // write is reported (fake failure).
    let mut ctl = checked(100.0, 1, 8);
    let mut os = OsSim::new();
    let mut rng = wlr_base::rng::Rng::seed_from(80);
    let mut fake_seen = false;
    let mut i = 0u64;
    while i < 200_000 {
        i += 1;
        let Some(pa) = os.pick_pa(&mut rng, N) else {
            break;
        };
        match ctl.write(pa, i) {
            WriteResult::Ok => {}
            WriteResult::ReportFailure(rep) => {
                if ctl.suspended() {
                    fake_seen = true;
                }
                os.retire(&mut ctl, rep);
                assert!(
                    !ctl.suspended(),
                    "grant must resume the suspended migration"
                );
                if fake_seen {
                    break;
                }
            }
            other => unreachable!("unexpected write result: {other:?}"),
        }
    }
    assert!(fake_seen, "no suspension-triggered report observed");
    assert!(ctl.counters().suspensions > 0);
    assert!(ctl.counters().fake_reports > 0);
}

#[test]
fn reads_are_served_during_suspension() {
    let mut ctl = checked(100.0, 1, 9);
    let mut os = OsSim::new();
    let mut rng = wlr_base::rng::Rng::seed_from(90);
    let mut value_of: std::collections::HashMap<u64, u64> = Default::default();
    let mut i = 0u64;
    loop {
        i += 1;
        assert!(i < 400_000, "never suspended");
        let Some(pa) = os.pick_pa(&mut rng, N) else {
            break;
        };
        match ctl.write(pa, i) {
            WriteResult::Ok => {
                value_of.insert(pa.index(), i);
            }
            WriteResult::ReportFailure(_) if ctl.suspended() => break,
            WriteResult::ReportFailure(rep) => {
                os.retire(&mut ctl, rep);
                // Data of the retired page is relocated by the OS;
                // drop those expectations in this mini-harness.
                let page = ctl.geometry().page_of(rep);
                value_of.retain(|&p, _| p / 64 != page.index());
            }
            other => unreachable!("unexpected write result: {other:?}"),
        }
    }
    // While suspended, every previously-written accessible PA must
    // still read its last value (possibly out of the migration buffer).
    for (&p, &v) in value_of.iter().take(64) {
        if os.accessible(Pa::new(p)) {
            assert_eq!(ctl.read(Pa::new(p)), v, "stale read at PA {p}");
        }
    }
}

#[test]
fn works_with_security_refresh_unmodified() {
    let dev = device(200.0, 0, 10);
    let wl = SecurityRefresh::builder(N)
        .region_blocks(64)
        .refresh_interval(5)
        .seed(10)
        .build();
    let mut ctl = RevivedController::builder(dev, Box::new(wl))
        .check_invariants(true)
        .build();
    let mut os = OsSim::new();
    let mut writes = 0u64;
    let mut rng = wlr_base::rng::Rng::seed_from(4);
    let mut model: std::collections::HashMap<u64, u64> = Default::default();
    for i in 0..80_000u64 {
        let Some(pa) = os.pick_pa(&mut rng, N) else {
            break;
        };
        match ctl.write(pa, i) {
            WriteResult::Ok => {
                model.insert(pa.index(), i);
                writes += 1;
            }
            WriteResult::ReportFailure(rep) => {
                let page = ctl.geometry().page_of(rep);
                // Data in the retired page is relocated by the OS; its
                // model entries are dropped in this mini-harness.
                let bpp = ctl.geometry().blocks_per_page();
                let base = page.index() * bpp;
                for b in base..base + bpp {
                    model.remove(&b);
                }
                os.retire(&mut ctl, rep);
            }
            other => unreachable!("unexpected write result: {other:?}"),
        }
        if ctl.linked_blocks() >= 10 {
            break;
        }
    }
    assert!(writes > 1000);
    assert!(ctl.linked_blocks() > 0, "SR failures should be hidden too");
    for (&p, &v) in model.iter() {
        if os.accessible(Pa::new(p)) {
            assert_eq!(ctl.read(Pa::new(p)), v, "PA {p} corrupted under SR");
        }
    }
    assert_eq!(ctl.label(), "ECP6-SR-WLR");
}

#[test]
fn label_for_start_gap() {
    let ctl = checked(1e9, 100, 11);
    assert_eq!(ctl.label(), "ECP6-SG-WLR");
}

#[test]
fn no_wl_also_works_under_framework() {
    // The framework does not require migrations at all.
    let dev = device(300.0, 0, 12);
    let mut ctl = RevivedController::builder(dev, Box::new(NoWearLeveling::new(N)))
        .check_invariants(true)
        .build();
    ctl.on_page_retired(PageId::new(0));
    let pa = Pa::new(70);
    let mut last = 0;
    for i in 1..30_000u64 {
        match ctl.write(pa, i) {
            WriteResult::Ok => last = i,
            _ => panic!("hidden failure expected"),
        }
        if ctl.linked_blocks() > 0 {
            break;
        }
    }
    assert!(ctl.linked_blocks() > 0);
    assert_eq!(ctl.read(pa), last);
}

#[test]
fn duplicate_page_grant_is_idempotent() {
    let mut ctl = checked(1e9, 10, 13);
    ctl.on_page_retired(PageId::new(2));
    let before = ctl.spare_pas();
    ctl.on_page_retired(PageId::new(2));
    assert_eq!(ctl.spare_pas(), before);
    assert_eq!(ctl.counters().spare_grants, 1);
}

#[test]
fn pointer_section_sizing_matches_paper() {
    // 64 blocks/page, 16 pointers/block -> 4 pointer blocks, 60 spares.
    let mut ctl = checked(1e9, 10, 14);
    ctl.on_page_retired(PageId::new(1));
    assert_eq!(ctl.spare_pas(), 60);
}

#[test]
fn inject_dead_is_idempotent_on_dead_blocks() {
    let mut ctl = checked(1e9, 1_000_000, 40); // no migrations
    ctl.on_page_retired(PageId::new(0));
    let pa = Pa::new(100);
    let da = ctl.wear_leveler().map(pa);
    ctl.inject_dead(da);
    ctl.inject_dead(da); // double injection before discovery: no-op
    assert_eq!(ctl.device().dead_blocks(), 1);
    assert_eq!(ctl.write(pa, 7), WriteResult::Ok);
    assert_eq!(ctl.linked_blocks(), 1);
    assert_eq!(ctl.read(pa), 7);
    let spares = ctl.spare_pas();
    // Re-injecting an already-linked dead block must not re-link it
    // or consume another spare.
    ctl.inject_dead(da);
    assert_eq!(ctl.write(pa, 8), WriteResult::Ok);
    assert_eq!(ctl.linked_blocks(), 1, "re-injection must not re-link");
    assert_eq!(
        ctl.spare_pas(),
        spares,
        "re-injection must not cost a spare"
    );
    assert_eq!(ctl.read(pa), 8);
}

#[test]
fn exhausting_last_spare_suspends_migration_without_wedging() {
    // Drain the spare pool by injecting failures faster than pages are
    // granted; a migration must eventually need a spare the pool does
    // not have and *suspend* — not panic, not wedge, not corrupt.
    // Needs more pages than the shared 4-page geometry: the drain and
    // recovery phases below retire several more.
    const N: u64 = 1024; // 16 pages of 64 blocks
    let dev = PcmDevice::builder(Geometry::builder().num_blocks(N).build().unwrap())
        .extra_blocks(1)
        .endurance_mean(1e9)
        .endurance_cov(0.2)
        .seed(41)
        .ecc(Box::new(Ecp::ecp6()))
        .track_contents(true)
        .build();
    let wl = Box::new(
        StartGap::builder(N)
            .gap_interval(4)
            .randomizer(RandomizerKind::Feistel { seed: 41 })
            .build(),
    );
    let mut ctl = RevivedController::builder(dev, wl)
        .check_invariants(true)
        .build();
    let mut os = OsSim::new();
    let mut rng = wlr_base::rng::Rng::stream(41, 1);
    os.grant(&mut ctl, PageId::new(0));
    let mut i = 0u64;
    while !ctl.suspended() {
        i += 1;
        assert!(i < 200_000, "controller wedged instead of suspending");
        if ctl.spare_pas() > 0 && i.is_multiple_of(3) {
            if let Some(pa) = os.pick_pa(&mut rng, N) {
                let da = ctl.wear_leveler().map(pa);
                ctl.inject_dead(da);
            }
        }
        let Some(pa) = os.pick_pa(&mut rng, N) else {
            panic!("ran out of software pages before suspending");
        };
        match ctl.write(pa, i) {
            WriteResult::Ok => {}
            WriteResult::ReportFailure(rep) => os.retire(&mut ctl, rep),
            other => unreachable!("unexpected write result: {other:?}"),
        }
    }
    assert!(ctl.suspended());
    assert_eq!(ctl.spare_pas(), 0, "suspension means the pool is dry");
    // Delayed space acquisition: each write while suspended is
    // sacrificed as a report until the parked migration resumes.
    for _ in 0..10 {
        if !ctl.suspended() {
            break;
        }
        let pa = os.pick_pa(&mut rng, N).expect("software pages remain");
        match ctl.write(pa, 999_999) {
            WriteResult::ReportFailure(rep) => os.retire(&mut ctl, rep),
            other => unreachable!("suspended controller must report, got {other:?}"),
        }
    }
    assert!(!ctl.suspended(), "grants must resume the parked migration");
    // And the controller still round-trips data afterwards.
    let mut ok = false;
    for attempt in 0..10u64 {
        let pa = os.pick_pa(&mut rng, N).expect("software pages remain");
        match ctl.write(pa, 1_000_000 + attempt) {
            WriteResult::Ok => {
                assert_eq!(ctl.read(pa), 1_000_000 + attempt);
                ok = true;
                break;
            }
            WriteResult::ReportFailure(rep) => os.retire(&mut ctl, rep),
            other => unreachable!("unexpected write result: {other:?}"),
        }
    }
    assert!(ok, "controller never serviced a write after resuming");
}

// ----- event spine & builder validation --------------------------------

#[test]
fn builder_rejects_zero_pointer_bytes() {
    let err = RevivedController::builder(device(1e9, 1, 50), sg(10, 50))
        .pointer_bytes(0)
        .try_build()
        .unwrap_err();
    assert!(matches!(err, BuilderError::PointerBytesZero));
}

#[test]
fn builder_rejects_cache_smaller_than_one_line() {
    let err = RevivedController::builder(device(1e9, 1, 51), sg(10, 51))
        .cache_bytes(8)
        .try_build()
        .unwrap_err();
    assert!(matches!(err, BuilderError::CacheTooSmall { bytes: 8, .. }));
}

#[test]
fn builder_rejects_mismatched_pa_space() {
    let err = RevivedController::builder(device(1e9, 1, 52), Box::new(NoWearLeveling::new(N / 2)))
        .try_build()
        .unwrap_err();
    assert!(matches!(err, BuilderError::PaSpaceMismatch { .. }));
}

#[test]
fn counter_sink_mirrors_builtin_counters() {
    // A ReviverCounters attached as a sink sees the same event stream the
    // built-in counters fold, so the two must agree bit for bit.
    let mut ctl = RevivedController::builder(device(150.0, 1, 53), sg(7, 53))
        .sink(Box::new(ReviverCounters::default()))
        .build();
    let mut os = OsSim::new();
    os.grant(&mut ctl, PageId::new(3));
    let mut rng = wlr_base::rng::Rng::seed_from(53);
    for i in 0..30_000u64 {
        let Some(pa) = os.pick_pa(&mut rng, N) else {
            break;
        };
        match ctl.write(pa, i) {
            WriteResult::Ok => {}
            WriteResult::ReportFailure(rep) => os.retire(&mut ctl, rep),
            other => unreachable!("unexpected write result: {other:?}"),
        }
    }
    assert!(ctl.counters().links > 0, "run too quiet to prove anything");
    let mirrored = *ctl.sink::<ReviverCounters>().expect("sink attached");
    assert_eq!(mirrored, ctl.counters());
}

#[test]
fn ring_sink_captures_link_events() {
    let mut ctl = RevivedController::builder(device(300.0, 1, 54), sg(1_000_000, 54))
        .sink(Box::new(TraceRingSink::new(64)))
        .build();
    ctl.on_page_retired(PageId::new(0));
    let pa = Pa::new(130);
    for i in 1..20_000u64 {
        ctl.write(pa, i);
        if ctl.linked_blocks() > 0 {
            break;
        }
    }
    assert!(ctl.linked_blocks() > 0);
    let ring = ctl.sink::<TraceRingSink>().expect("sink attached");
    assert!(
        ring.events()
            .any(|(_, e)| matches!(e, ReviverEvent::LinkCreated { .. })),
        "ring must hold the link event"
    );
    assert!(ring.dump().contains("\"event\":\"LinkCreated\""));
}

#[test]
fn tolerant_invariant_sink_is_silent_on_healthy_switching_run() {
    let mut ctl = RevivedController::builder(device(150.0, 1, 6), sg(7, 6))
        .check_invariants(true)
        .sink(Box::new(InvariantSink::new()))
        .build();
    let mut os = OsSim::new();
    os.grant(&mut ctl, PageId::new(3));
    let mut rng = wlr_base::rng::Rng::seed_from(99);
    for i in 0..60_000u64 {
        let Some(pa) = os.pick_pa(&mut rng, N) else {
            break;
        };
        match ctl.write(pa, i) {
            WriteResult::Ok => {}
            WriteResult::ReportFailure(rep) => os.retire(&mut ctl, rep),
            other => unreachable!("unexpected write result: {other:?}"),
        }
        if ctl.spare_pas() == 0 && ctl.linked_blocks() > 30 {
            break;
        }
    }
    let sink = ctl.sink::<InvariantSink>().expect("sink attached");
    assert!(sink.checks() > 0, "no quiescent point was ever validated");
    assert_eq!(sink.violations(), &[] as &[String]);
}

#[test]
fn strict_invariant_sink_catches_seeded_two_step_chain() {
    // The chain-growth ablation (no switching) lets a dead shadow stay
    // linked behind a live head — exactly the multi-step chain the
    // strict checker must flag at the next quiescent point.
    let mut ctl = RevivedController::builder(device(150.0, 1, 7), sg(1_000_000, 7))
        .chain_switching(false)
        .sink(Box::new(InvariantSink::strict()))
        .build();
    let mut os = OsSim::new();
    os.grant(&mut ctl, PageId::new(0));
    let mut rng = wlr_base::rng::Rng::seed_from(70);
    let mut pa = Pa::new(100);
    let mut caught = false;
    for i in 0..200_000u64 {
        if !os.accessible(pa) {
            pa = os.pick_pa(&mut rng, N).expect("space left");
        }
        match ctl.write(pa, i) {
            WriteResult::Ok => {}
            WriteResult::ReportFailure(rep) => os.retire(&mut ctl, rep),
            other => unreachable!("unexpected write result: {other:?}"),
        }
        if !ctl
            .sink::<InvariantSink>()
            .expect("sink attached")
            .violations()
            .is_empty()
        {
            caught = true;
            break;
        }
    }
    assert!(caught, "strict checker never flagged the two-step chain");
    assert_eq!(ctl.counters().switches, 0, "ablation must not switch");
}
