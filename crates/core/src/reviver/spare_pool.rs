//! Reactive spare-space acquisition (§III-A) and the retired-page
//! layout.
//!
//! Reserved PAs come from OS pages retired through the standard
//! access-error exception. The pool holds the unlinked PAs (the
//! current/last registers of §III-A, generalized to a queue across
//! multiple retired pages) and the layout tables that map each retired
//! page into shadow PAs plus trailing pointer-section blocks (Figure 4).
//! When the pool runs dry mid-operation, the dead block *parks* in
//! Theorem 2's undiscovered-failure state instead of linking.

use super::events::ReviverEvent;
use super::RevivedController;
use crate::error::ReviverError;
use std::collections::VecDeque;
use wlr_base::dense::{DenseMap, DenseSet};
use wlr_base::{Pa, PageId};

/// Spare-PA acquisition state and the retired-page layout.
#[derive(Debug, Clone)]
pub(super) struct SparePool {
    /// Unlinked reserved PAs (the current/last registers of §III-A,
    /// generalized to a queue across multiple retired pages).
    pub(super) spares: VecDeque<Pa>,
    /// Reserved PA → the pointer-section PA whose block stores its
    /// inverse pointer.
    pub(super) ptr_slot: DenseMap<Pa>,
    /// Pointer-section PAs (their blocks hold live inverse-pointer data).
    pub(super) section_pas: DenseSet,
    /// Retired-page bitmap (§III-A; persisted across reboots on hardware).
    pub(super) retired: Vec<bool>,
    /// Dead blocks the controller legitimately does not know about yet —
    /// Theorem 2's "undiscovered failure" state: injected failures not
    /// yet touched, and blocks recovery could not heal for lack of
    /// spares. Exempt from the Theorem 1 reachability invariant; cleared
    /// when the block gets linked.
    pub(super) undiscovered: DenseSet,
}

impl RevivedController {
    pub(super) fn take_spare(&mut self) -> Result<Pa, ReviverError> {
        match self.pool.spares.pop_front() {
            Some(v) => {
                self.emit(ReviverEvent::SpareAcquired { shadow: v });
                Ok(v)
            }
            None => Err(ReviverError::NeedSpare),
        }
    }

    /// [`Self::take_spare`], but when the pool is dry the dead block the
    /// spare was meant to link parks in Theorem 2's undiscovered-failure
    /// state (it is discovered but *unlinked*, which is structurally the
    /// same thing: the chain heals on the next touch after a grant, and
    /// [`RevivedController::link`] lifts the mark).
    pub(super) fn take_spare_or_park(&mut self, dead: wlr_base::Da) -> Result<Pa, ReviverError> {
        match self.take_spare() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.pool.undiscovered.insert(dead.index());
                self.emit(ReviverEvent::SpareParked { dead });
                Err(e)
            }
        }
    }

    /// Indexes a retired page's PAs: the trailing pointer-section blocks
    /// go into `section_pas`, every shadow PA gets its inverse-pointer
    /// slot, and the shadow PAs are returned. The split is a pure
    /// function of geometry and pointer width, so recovery re-derives it
    /// from the persisted bitmap alone (Figure 4: 4 blocks of 16 pointers
    /// cover 60 shadows per 64-block page).
    pub(super) fn index_grant(&mut self, page: PageId) -> Vec<Pa> {
        let bpp = self.geo.blocks_per_page();
        let section = bpp.div_ceil(self.ptrs_per_block + 1).clamp(1, bpp - 1);
        let pas: Vec<Pa> = self.geo.page_pas(page).collect();
        let (shadows, slots) = pas.split_at((bpp - section) as usize);
        for &slot in slots {
            self.pool.section_pas.insert(slot.index());
        }
        for (i, &v) in shadows.iter().enumerate() {
            self.pool
                .ptr_slot
                .insert(v.index(), slots[i / self.ptrs_per_block as usize]);
        }
        shadows.to_vec()
    }
}
