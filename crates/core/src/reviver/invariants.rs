//! Theorems 1–3 as runtime checks: the full-scan assertion
//! ([`RevivedController::assert_invariants`]) and the incremental
//! per-event checker ([`InvariantSink`]).

use super::events::{EventSink, ReviverEvent};
use super::RevivedController;
use crate::controller::Controller;
use wlr_base::Da;

impl RevivedController {
    /// Asserts the framework's structural invariants. Enabled per request
    /// via [`super::RevivedControllerBuilder::check_invariants`]; also
    /// callable directly from tests.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn assert_invariants(&self) {
        for (da_idx, &v) in self.links.ptr.iter() {
            let da = Da::new(da_idx);
            assert!(self.device.is_dead(da), "linked block {da} is not dead");
            assert!(
                self.is_reserved(v),
                "virtual shadow {v} of {da} is not in a retired page"
            );
            assert_eq!(
                self.links.inv.get(v.index()),
                Some(&da),
                "inverse pointer of {v} is inconsistent"
            );
            let sda = self.wl.map(v);
            // One-step chains (Theorem 1): for a *software-accessible*
            // failed block the shadow is healthy, or the block is on a
            // PA–DA loop and holds no data. A head whose own PA has been
            // retired (e.g. the page sacrificed by the very report that
            // ran the spares dry) may transiently carry a dead shadow; it
            // is healed lazily on the next touch, exactly like an
            // undiscovered failure (Theorem 2's note). A *linked* dead
            // shadow is likewise a transient two-step chain — a wear-level
            // migration can rotate a shadow PA onto a dead linked block
            // without moving live data (the source was an undiscovered
            // failure, so nothing was buffered and the Figure-3 repair
            // never ran) — collapsed by `switch` on the next touch. Only
            // an *unlinked*, *discovered* dead shadow is a real violation.
            let accessible = self.safe_inverse(da).is_some_and(|p| !self.is_reserved(p));
            let tolerated = self.links.ptr.contains_key(sda.index())
                || self.pool.undiscovered.contains(sda.index())
                || self.device.silent_failures().contains(&sda);
            assert!(
                !self.switching || !accessible || !self.device.is_dead(sda) || sda == da || tolerated,
                "two-step chain at {da} (PA {:?}, v {v}): shadow {sda} is dead (linked: {}, shadow inverse {:?})",
                self.safe_inverse(da),
                self.links.ptr.contains_key(sda.index()),
                self.safe_inverse(sda),
            );
        }
        for &v in &self.pool.spares {
            assert!(self.is_reserved(v), "spare {v} outside retired pages");
            assert!(
                !self.links.inv.contains_key(v.index()),
                "spare {v} is still linked"
            );
        }
        // Theorem 1 (reachability direction): every dead block mapped by a
        // software-accessible PA is linked — except undiscovered failures
        // (Theorem 2): injected blocks not yet touched, blocks recovery
        // could not heal, and silent write failures the device concealed.
        for da in self.device.dead_iter() {
            if self.pool.undiscovered.contains(da.index()) {
                continue;
            }
            if self.device.silent_failures().contains(&da)
                && !self.links.ptr.contains_key(da.index())
            {
                continue;
            }
            if let Some(p) = self.safe_inverse(da) {
                if !self.is_reserved(p) {
                    assert!(
                        self.links.ptr.contains_key(da.index()),
                        "software-accessible dead block {da} (PA {p}) unlinked"
                    );
                }
            }
        }
    }
}

/// An incremental Theorem-1 checker driven by the event spine.
///
/// Instead of rescanning every link after each request (what
/// [`RevivedController::assert_invariants`] in `check_invariants` mode
/// does), the sink accumulates the device addresses each link-mutating
/// event touched and validates only that *dirty set* when the controller
/// reaches a quiescent point ([`ReviverEvent::Quiesced`]). Violations
/// are recorded (inspect with [`InvariantSink::violations`]); the sink
/// never panics, so it is safe on ablation runs that break the
/// invariants on purpose.
///
/// `strict` mode drops the transient-state tolerances *and* the
/// switching gate: any linked block whose shadow resolves to another
/// dead block is flagged. That is exactly what the chain-growth ablation
/// (`chain_switching(false)`) produces, which the regression suite uses
/// to prove the sink catches seeded violations.
#[derive(Debug, Default)]
pub struct InvariantSink {
    strict: bool,
    dirty: Vec<Da>,
    violations: Vec<String>,
    checks: u64,
}

impl InvariantSink {
    /// A checker with the same tolerance rules as
    /// [`RevivedController::assert_invariants`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A checker with zero tolerance for multi-step chains (see the type
    /// docs); pair with the `chain_switching(false)` ablation to verify
    /// the sink actually fires.
    pub fn strict() -> Self {
        InvariantSink {
            strict: true,
            ..Self::default()
        }
    }

    /// Violations recorded so far, in detection order.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Quiescent-point validations performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    fn mark(&mut self, da: Da) {
        if !self.dirty.contains(&da) {
            self.dirty.push(da);
        }
    }

    /// Marks `da` dirty plus — if some linked head's chain now resolves
    /// *into* `da` — that head too (a link appearing at `da` can turn the
    /// head's one-step chain into a two-step one). O(1): one mapping
    /// inverse plus one table lookup.
    fn mark_with_head(&mut self, ctl: &RevivedController, da: Da) {
        self.mark(da);
        if let Some(p) = ctl.safe_inverse(da) {
            if ctl.is_reserved_pa(p) {
                if let Some(head) = ctl.linked_head_of(p) {
                    if head != da {
                        self.mark(head);
                    }
                }
            }
        }
    }

    /// Validates one dirty address against the Theorem-1 chain shape.
    fn check_da(&mut self, ctl: &RevivedController, da: Da) {
        let Some(v) = ctl.shadow_of(da) else {
            return; // unlinked since it was marked
        };
        let sda = ctl.wear_leveler().map(v);
        if sda == da || !ctl.device().is_dead(sda) {
            return; // loop block or healthy shadow: one-step by definition
        }
        if self.strict {
            self.violations.push(format!(
                "strict: linked block {da} has dead shadow {sda} (multi-step chain)"
            ));
            return;
        }
        // Mirror assert_invariants' tolerances exactly: only an unlinked,
        // discovered dead shadow of a software-accessible head violates.
        let accessible = ctl.safe_inverse(da).is_some_and(|p| !ctl.is_reserved_pa(p));
        let tolerated = ctl.shadow_of(sda).is_some()
            || ctl.is_undiscovered(sda)
            || ctl.device().silent_failures().contains(&sda);
        if ctl.switching_enabled() && accessible && !tolerated {
            self.violations
                .push(format!("two-step chain at {da}: shadow {sda} is dead"));
        }
    }
}

impl EventSink for InvariantSink {
    fn on_event(&mut self, ctl: &RevivedController, ev: &ReviverEvent) {
        match ev {
            ReviverEvent::LinkCreated { da, .. } => self.mark_with_head(ctl, *da),
            ReviverEvent::Relinked { da, .. } => self.mark(*da),
            ReviverEvent::ChainSwitched { head, dead_shadow } => {
                self.mark(*head);
                self.mark(*dead_shadow);
            }
            ReviverEvent::LoopFormed { da } => self.mark(*da),
            ReviverEvent::Quiesced => {
                self.checks += 1;
                let dirty = std::mem::take(&mut self.dirty);
                for da in dirty {
                    self.check_da(ctl, da);
                }
            }
            _ => {}
        }
    }

    // Quiescent points are this sink's validation trigger.
    fn wants_quiesced(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
