//! A minimal HTTP/1.0 endpoint over `std::net` — no dependencies, no
//! keep-alive, one request per connection. Serves:
//!
//! * `GET /metrics` — Prometheus text exposition of the shared registry;
//! * `GET /healthz` — liveness JSON (`recovering` / `ok` / `degraded` /
//!   `draining`);
//! * `GET /snapshot` — the latest pipeline snapshot as JSON;
//! * `GET /chaos?plan=<plan>` — admin fault injection: parses the
//!   percent-encoded plan (see [`crate::chaos`]) and queues it for the
//!   service loop to arm at its next iteration.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use wlr_base::stats::registry::MetricsRegistry;

use crate::chaos::{self, ChaosCmd};

/// The daemon's externally visible lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ServeState {
    /// Boot: replaying the persisted image, listener not yet serving
    /// traffic answers (only observed if something probes mid-boot).
    Recovering = 0,
    /// Serving with every bank healthy.
    Ok = 1,
    /// Serving with at least one bank quarantined (N−k mode).
    Degraded = 2,
    /// Shutdown requested; the loop is draining and persisting.
    Draining = 3,
}

impl ServeState {
    fn from_u8(v: u8) -> ServeState {
        match v {
            0 => ServeState::Recovering,
            1 => ServeState::Ok,
            2 => ServeState::Degraded,
            _ => ServeState::Draining,
        }
    }

    /// The string `/healthz` reports.
    pub fn name(self) -> &'static str {
        match self {
            ServeState::Recovering => "recovering",
            ServeState::Ok => "ok",
            ServeState::Degraded => "degraded",
            ServeState::Draining => "draining",
        }
    }
}

/// State the endpoint threads read.
#[derive(Debug)]
pub struct Shared {
    /// The registry `/metrics` renders.
    pub registry: Arc<MetricsRegistry>,
    /// Latest pipeline snapshot, pre-rendered as JSON by the service loop.
    pub snapshot_json: Mutex<String>,
    /// Lifecycle state (a [`ServeState`] discriminant).
    state: AtomicU8,
    /// Requests serviced this lifetime (mirrors the counter, for healthz).
    pub serviced: AtomicU64,
    /// Whether this lifetime restored a persisted image at boot.
    pub recovered: AtomicBool,
    /// Chaos commands accepted over `/chaos`, awaiting the service loop.
    chaos_queue: Mutex<Vec<ChaosCmd>>,
    chaos_pending: AtomicBool,
    /// Registry name of the running stack (set once at boot).
    scheme: std::sync::OnceLock<&'static str>,
}

impl Shared {
    /// Fresh shared state around `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Shared {
        Shared {
            registry,
            snapshot_json: Mutex::new("{}".into()),
            state: AtomicU8::new(ServeState::Recovering as u8),
            serviced: AtomicU64::new(0),
            recovered: AtomicBool::new(false),
            chaos_queue: Mutex::new(Vec::new()),
            chaos_pending: AtomicBool::new(false),
            scheme: std::sync::OnceLock::new(),
        }
    }

    /// Publishes the running stack's registry name (first call wins).
    pub fn set_scheme(&self, name: &'static str) {
        let _ = self.scheme.set(name);
    }

    /// The running stack's registry name.
    pub fn scheme(&self) -> &'static str {
        self.scheme.get().copied().unwrap_or("reviver-sg")
    }

    /// Replaces the pre-rendered snapshot.
    pub fn set_snapshot(&self, json: String) {
        *self.snapshot_json.lock().expect("snapshot lock") = json;
    }

    /// Publishes a lifecycle transition.
    pub fn set_state(&self, s: ServeState) {
        self.state.store(s as u8, Ordering::Release);
    }

    /// The current lifecycle state.
    pub fn state(&self) -> ServeState {
        ServeState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Queues parsed chaos commands for the service loop.
    pub fn post_chaos(&self, cmds: Vec<ChaosCmd>) {
        if cmds.is_empty() {
            return;
        }
        self.chaos_queue.lock().expect("chaos lock").extend(cmds);
        self.chaos_pending.store(true, Ordering::Release);
    }

    /// Takes every queued chaos command (one relaxed load when idle).
    pub fn take_chaos(&self) -> Vec<ChaosCmd> {
        if !self.chaos_pending.swap(false, Ordering::Acquire) {
            return Vec::new();
        }
        std::mem::take(&mut *self.chaos_queue.lock().expect("chaos lock"))
    }
}

/// Binds `addr` and serves requests on a detached thread until the
/// process exits. Returns the actual local address (useful with port 0).
pub fn spawn(addr: &str, shared: Arc<Shared>) -> std::io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("wlr-http".into())
        .spawn(move || {
            for conn in listener.incoming() {
                match conn {
                    Ok(stream) => handle(stream, &shared),
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        })
        .expect("spawn http listener");
    Ok(local)
}

fn handle(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1024];
    let n = match stream.read(&mut buf) {
        Ok(n) if n > 0 => n,
        _ => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = route(path, shared);
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
}

fn route(path: &str, shared: &Shared) -> (&'static str, &'static str, String) {
    if let Some(query) = path.strip_prefix("/chaos") {
        return chaos_route(query, shared);
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            shared.registry.render(),
        ),
        "/healthz" => ("200 OK", "application/json", healthz_json(shared)),
        "/stacks" => ("200 OK", "application/json", stacks_json(shared)),
        "/snapshot" => (
            "200 OK",
            "application/json",
            shared.snapshot_json.lock().expect("snapshot lock").clone(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".into()),
    }
}

fn chaos_route(query: &str, shared: &Shared) -> (&'static str, &'static str, String) {
    let Some(plan) = query.strip_prefix("?plan=") else {
        return (
            "400 Bad Request",
            "application/json",
            "{\"error\":\"expected /chaos?plan=<plan>\"}".into(),
        );
    };
    match chaos::parse_plan(&chaos::percent_decode(plan)) {
        Ok(cmds) => {
            let n = cmds.len();
            shared.post_chaos(cmds);
            (
                "200 OK",
                "application/json",
                format!("{{\"accepted\":{n}}}"),
            )
        }
        Err(e) => (
            "400 Bad Request",
            "application/json",
            format!("{{\"error\":{:?}}}", e),
        ),
    }
}

/// The scheme registry as JSON: every stack, which are revivable, and
/// which one this daemon runs — the discovery surface for
/// `WLR_SERVE_SCHEME`.
fn stacks_json(shared: &Shared) -> String {
    let mut s = format!("{{\"running\":\"{}\",\"stacks\":[", shared.scheme());
    for (i, spec) in wl_reviver::SchemeRegistry::global().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"title\":\"{}\",\"revivable\":{}}}",
            spec.name, spec.title, spec.revivable
        ));
    }
    s.push_str("]}");
    s
}

fn healthz_json(shared: &Shared) -> String {
    format!(
        "{{\"status\":\"{}\",\"scheme\":\"{}\",\"requests\":{},\"recovered\":{}}}",
        shared.state().name(),
        shared.scheme(),
        shared.serviced.load(Ordering::Relaxed),
        shared.recovered.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header block");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn endpoints_serve_over_a_real_socket() {
        let registry = Arc::new(MetricsRegistry::new());
        let c = registry.counter("wlr_test_total", "test counter");
        c.add(41);
        let shared = Arc::new(Shared::new(Arc::clone(&registry)));
        shared.serviced.store(41, Ordering::Relaxed);
        shared.set_state(ServeState::Ok);
        shared.set_snapshot("{\"requests\":41}".into());
        let addr = spawn("127.0.0.1:0", Arc::clone(&shared)).expect("bind");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("wlr_test_total 41"), "{body}");
        let parsed = wlr_base::stats::registry::parse_exposition(&body)
            .expect("scrape round-trips through the parser");
        assert!(parsed.iter().any(|s| s.name == "wlr_test_total"));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"requests\":41"), "{body}");

        let (head, body) = get(addr, "/snapshot");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, "{\"requests\":41}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");

        // /chaos queues parsed commands for the service loop …
        let (head, body) = get(addr, "/chaos?plan=bank0%3Adie%40500%3Bdaemon%3Akill%4099");
        assert!(head.starts_with("HTTP/1.0 200"), "{head} {body}");
        assert_eq!(body, "{\"accepted\":2}");
        let cmds = shared.take_chaos();
        assert_eq!(cmds.len(), 2);
        assert!(shared.take_chaos().is_empty(), "queue drains once");

        // … and rejects garbage without queueing anything.
        let (head, _) = get(addr, "/chaos?plan=bank0%3Aexplode");
        assert!(head.starts_with("HTTP/1.0 400"), "{head}");
        let (head, _) = get(addr, "/chaos");
        assert!(head.starts_with("HTTP/1.0 400"), "{head}");
        assert!(shared.take_chaos().is_empty());
    }

    #[test]
    fn healthz_tracks_the_state_machine() {
        let shared = Shared::new(Arc::new(MetricsRegistry::new()));
        assert!(healthz_json(&shared).contains("\"status\":\"recovering\""));
        for (s, name) in [
            (ServeState::Ok, "ok"),
            (ServeState::Degraded, "degraded"),
            (ServeState::Draining, "draining"),
        ] {
            shared.set_state(s);
            assert_eq!(shared.state(), s);
            assert!(healthz_json(&shared).contains(name));
        }
    }
}
