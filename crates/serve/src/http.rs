//! A minimal HTTP/1.0 endpoint over `std::net` — no dependencies, no
//! keep-alive, one request per connection. Serves:
//!
//! * `GET /metrics` — Prometheus text exposition of the shared registry;
//! * `GET /healthz` — liveness JSON;
//! * `GET /snapshot` — the latest pipeline snapshot as JSON.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use wlr_base::stats::registry::MetricsRegistry;

/// State the endpoint threads read.
#[derive(Debug)]
pub struct Shared {
    /// The registry `/metrics` renders.
    pub registry: Arc<MetricsRegistry>,
    /// Latest pipeline snapshot, pre-rendered as JSON by the service loop.
    pub snapshot_json: Mutex<String>,
    /// Whether the service loop is live.
    pub healthy: AtomicBool,
    /// Requests serviced this lifetime (mirrors the counter, for healthz).
    pub serviced: AtomicU64,
    /// Whether this lifetime restored a persisted image at boot.
    pub recovered: AtomicBool,
}

impl Shared {
    /// Fresh shared state around `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Shared {
        Shared {
            registry,
            snapshot_json: Mutex::new("{}".into()),
            healthy: AtomicBool::new(true),
            serviced: AtomicU64::new(0),
            recovered: AtomicBool::new(false),
        }
    }

    /// Replaces the pre-rendered snapshot.
    pub fn set_snapshot(&self, json: String) {
        *self.snapshot_json.lock().expect("snapshot lock") = json;
    }
}

/// Binds `addr` and serves requests on a detached thread until the
/// process exits. Returns the actual local address (useful with port 0).
pub fn spawn(addr: &str, shared: Arc<Shared>) -> std::io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("wlr-http".into())
        .spawn(move || {
            for conn in listener.incoming() {
                match conn {
                    Ok(stream) => handle(stream, &shared),
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        })
        .expect("spawn http listener");
    Ok(local)
}

fn handle(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1024];
    let n = match stream.read(&mut buf) {
        Ok(n) if n > 0 => n,
        _ => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = route(path, shared);
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
}

fn route(path: &str, shared: &Shared) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            shared.registry.render(),
        ),
        "/healthz" => ("200 OK", "application/json", healthz_json(shared)),
        "/snapshot" => (
            "200 OK",
            "application/json",
            shared.snapshot_json.lock().expect("snapshot lock").clone(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".into()),
    }
}

fn healthz_json(shared: &Shared) -> String {
    format!(
        "{{\"status\":\"{}\",\"requests\":{},\"recovered\":{}}}",
        if shared.healthy.load(Ordering::Relaxed) {
            "ok"
        } else {
            "draining"
        },
        shared.serviced.load(Ordering::Relaxed),
        shared.recovered.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header block");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn endpoints_serve_over_a_real_socket() {
        let registry = Arc::new(MetricsRegistry::new());
        let c = registry.counter("wlr_test_total", "test counter");
        c.add(41);
        let shared = Arc::new(Shared::new(Arc::clone(&registry)));
        shared.serviced.store(41, Ordering::Relaxed);
        shared.set_snapshot("{\"requests\":41}".into());
        let addr = spawn("127.0.0.1:0", Arc::clone(&shared)).expect("bind");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("wlr_test_total 41"), "{body}");
        let parsed = wlr_base::stats::registry::parse_exposition(&body)
            .expect("scrape round-trips through the parser");
        assert!(parsed.iter().any(|s| s.name == "wlr_test_total"));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"requests\":41"), "{body}");

        let (head, body) = get(addr, "/snapshot");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, "{\"requests\":41}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
    }
}
