//! Daemon configuration, read once at boot from `WLR_*` environment
//! variables (documented in EXPERIMENTS.md).

use crate::fleet::ShedPolicy;

/// Everything the daemon needs to run, with smoke-friendly defaults.
#[derive(Debug, Clone)]
pub struct Config {
    /// `WLR_SERVE_ADDR` — TCP listen address for the metrics endpoints.
    pub addr: String,
    /// `WLR_ARRIVAL_RATE` — open-loop arrivals per second (0 = unpaced).
    pub arrival_rate: u64,
    /// `WLR_METRICS_SAMPLE` — span sampling period, 1-in-N (0 = off).
    pub metrics_sample: u64,
    /// `WLR_SHED_POLICY` — what to do when the admission ring is full.
    pub shed_policy: ShedPolicy,
    /// `WLR_SERVE_REQUESTS` — stop after this many generated arrivals
    /// (0 = run until signalled).
    pub requests: u64,
    /// `WLR_SERVE_BANKS` — bank count for the pipeline.
    pub banks: usize,
    /// `WLR_SERVE_BLOCKS` — global PCM capacity in blocks.
    pub total_blocks: u64,
    /// `WLR_SERVE_SEED` — experiment seed.
    pub seed: u64,
    /// `WLR_SERVE_SCHEME` — per-bank stack, any *revived* scheme-registry
    /// name (part of the persisted-image identity).
    pub scheme: String,
    /// `WLR_SERVE_ENDURANCE` — mean cell endurance per bank.
    pub endurance_mean: f64,
    /// `WLR_SERVE_USERS` — simulated client population.
    pub users: u64,
    /// `WLR_SERVE_STATE` — device-image path for crash persistence
    /// (empty/unset = no persistence).
    pub state_path: Option<String>,
    /// `WLR_TRACE_DUMP` — path prefix for per-bank trace-ring dumps on
    /// shutdown (empty/unset = no dump).
    pub trace_dump: Option<String>,
    /// `WLR_SERVE_PUBLISH_MS` — metrics publication interval.
    pub publish_ms: u64,
    /// Start-Gap ψ (fixed; part of the persisted-image identity).
    pub gap_interval: u64,
    /// Per-bank trace-ring capacity in events.
    pub trace_ring: usize,
    /// Admission-ring capacity in requests.
    pub admission_depth: usize,
    /// `WLR_CHAOS_PLAN` — chaos clauses armed at boot (see
    /// [`crate::chaos`]); empty/unset = no injected faults.
    pub chaos_plan: Option<String>,
    /// `WLR_RETRY_MAX` — transient-read retries before the typed error
    /// surfaces.
    pub retry_max: u32,
    /// `WLR_RETRY_BACKOFF` — base spin count for the exponential
    /// retry backoff.
    pub retry_backoff: u32,
    /// `WLR_SERVE_VERIFY` — enable the per-bank integrity oracle (costs
    /// DRAM proportional to the live line count; chaos smoke turns it on
    /// to prove zero integrity violations under fault storms).
    pub verify: bool,
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) if !v.is_empty() => v
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v:?} is not a number")),
        _ => default,
    }
}

fn env_str(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.is_empty())
}

impl Config {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Config {
        let shed_policy = match env_str("WLR_SHED_POLICY").as_deref() {
            None | Some("shed") => ShedPolicy::Shed,
            Some("block") => ShedPolicy::Block,
            Some(other) => panic!("WLR_SHED_POLICY={other:?}: expected \"shed\" or \"block\""),
        };
        let scheme = env_str("WLR_SERVE_SCHEME").unwrap_or_else(|| "reviver-sg".into());
        match wl_reviver::SchemeRegistry::global().resolve(&scheme) {
            Ok(spec) if spec.revivable => {}
            Ok(spec) => {
                let names: Vec<_> = wl_reviver::SchemeRegistry::global()
                    .revivable()
                    .map(|s| s.name)
                    .collect();
                eprintln!(
                    "wlr-serve: WLR_SERVE_SCHEME={}: the daemon's metrics, tracing, and \
                     persistence need a revived stack; valid: {}",
                    spec.name,
                    names.join(", ")
                );
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("wlr-serve: WLR_SERVE_SCHEME: {e}");
                std::process::exit(2);
            }
        }
        Config {
            addr: env_str("WLR_SERVE_ADDR").unwrap_or_else(|| "127.0.0.1:9464".into()),
            arrival_rate: env_u64("WLR_ARRIVAL_RATE", 50_000),
            // 1-in-1024: at multi-M writes/s this still fills the span
            // histogram with thousands of samples per second, while the
            // `Instant::now` stamps stay far below 1% of service time
            // (1-in-64 measurably costs several percent).
            metrics_sample: env_u64("WLR_METRICS_SAMPLE", 1024),
            shed_policy,
            requests: env_u64("WLR_SERVE_REQUESTS", 0),
            banks: env_u64("WLR_SERVE_BANKS", 4) as usize,
            total_blocks: env_u64("WLR_SERVE_BLOCKS", 1 << 14),
            seed: env_u64("WLR_SERVE_SEED", 7),
            scheme,
            endurance_mean: env_u64("WLR_SERVE_ENDURANCE", 1_000_000) as f64,
            users: env_u64("WLR_SERVE_USERS", 1_000_000),
            state_path: env_str("WLR_SERVE_STATE"),
            trace_dump: env_str("WLR_TRACE_DUMP"),
            publish_ms: env_u64("WLR_SERVE_PUBLISH_MS", 250),
            gap_interval: env_u64("WLR_SERVE_GAP_INTERVAL", 100),
            trace_ring: env_u64("WLR_SERVE_TRACE_RING", 512) as usize,
            admission_depth: env_u64("WLR_SERVE_ADMISSION_DEPTH", 1 << 16) as usize,
            chaos_plan: env_str("WLR_CHAOS_PLAN"),
            retry_max: env_u64("WLR_RETRY_MAX", 3) as u32,
            retry_backoff: env_u64("WLR_RETRY_BACKOFF", 64) as u32,
            verify: env_str("WLR_SERVE_VERIFY").as_deref() == Some("1"),
        }
    }
}
