//! `wlr-serve`: the always-on WL-Reviver service daemon.
//!
//! Runs the pinned multi-bank pipeline ([`wlr_mc::McFrontend`]) as a
//! long-lived service: an open-loop client [`fleet`] feeds a bounded
//! admission ring, the service loop drains it through
//! [`McFrontend::with_pipeline`], and a std-only [`http`] endpoint
//! exposes live `/metrics` (Prometheus text), `/healthz`, and
//! `/snapshot`. Observability rides the existing machinery end to end:
//! revival counters arrive through per-bank
//! [`wl_reviver::MetricsSink`]s on the event spine, pipeline gauges come
//! from lag-one [`wlr_mc::PipelineSnapshot`]s, and wall-clock spans are
//! sampled 1-in-N via the front-end's span probes — the hot path never
//! takes a lock for any of it.
//!
//! On SIGTERM/SIGINT (or after `WLR_SERVE_REQUESTS` arrivals) the daemon
//! drains, persists the device image ([`state`]), optionally dumps the
//! per-bank trace rings, and exits. A restart with the same
//! configuration replays the image — wear, page retirements, reviver
//! metadata — and the §III-B recovery scan runs *into the same live
//! sinks*, so the first post-restart scrape already shows the recovery
//! phase counters.

#![deny(unsafe_code)]

mod config;
mod fleet;
mod http;
mod metrics;
mod signal;
mod state;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wl_reviver::{MetricsSink, TraceRingSink};
use wlr_base::spsc::{self, Consumer};
use wlr_mc::{McFrontend, McStopPolicy, PipelineSnapshot};

use config::Config;
use fleet::{FleetConfig, FleetCounters};
use metrics::ServeMetrics;

fn main() {
    let cfg = Config::from_env();
    signal::install();
    let m = ServeMetrics::new(cfg.banks);

    let mut mc = build_frontend(&cfg);
    if cfg.metrics_sample != 0 {
        mc.set_span_histogram(m.span_ns.clone());
    }
    for b in 0..cfg.banks {
        let r = mc
            .bank_sim_mut(b)
            .controller_mut()
            .as_reviver_mut()
            .expect("wlr-serve requires a reviver scheme");
        r.add_sink(Box::new(MetricsSink::new(m.revival.clone())));
        r.add_sink(Box::new(TraceRingSink::new(cfg.trace_ring)));
    }

    let shared = Arc::new(http::Shared::new(Arc::clone(&m.registry)));

    // Restore a persisted image, replaying recovery into the live sinks.
    let mut lifetime_serviced = 0u64;
    if let Some(path) = &cfg.state_path {
        match state::load(path) {
            Ok(Some(img)) => {
                if !img.matches(
                    cfg.banks,
                    cfg.total_blocks,
                    cfg.seed,
                    cfg.endurance_mean,
                    cfg.gap_interval,
                ) {
                    eprintln!("wlr-serve: {path} was captured under a different configuration");
                    std::process::exit(2);
                }
                lifetime_serviced = img.serviced;
                let report = state::restore(&mut mc, &img);
                m.restores.inc();
                shared.recovered.store(true, Ordering::Relaxed);
                eprintln!(
                    "wlr-serve: restored {path}: {} blocks scanned, {} links recovered, {} healed",
                    report.blocks_scanned, report.links_recovered, report.healed_links
                );
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("wlr-serve: cannot restore {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    // Pre-render a snapshot so the very first `/snapshot` scrape is
    // well-formed even if it beats the service loop's first publish.
    shared.set_snapshot(snapshot_json(
        &mc.pipeline_snapshot(),
        &m,
        lifetime_serviced,
    ));

    let addr = match http::spawn(&cfg.addr, Arc::clone(&shared)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wlr-serve: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    eprintln!("wlr-serve: listening on {addr}");

    let (producer, consumer) = spsc::ring(cfg.admission_depth);
    let fleet_stop = Arc::new(AtomicBool::new(false));
    let fleet = fleet::spawn(
        FleetConfig {
            space: cfg.total_blocks,
            users: cfg.users,
            rate: cfg.arrival_rate,
            total: cfg.requests,
            hot_shift: (cfg.requests / 8).max(1 << 14),
            seed: cfg.seed,
            policy: cfg.shed_policy,
        },
        producer,
        FleetCounters {
            generated: m.generated.clone(),
            shed: m.shed.clone(),
        },
        Arc::clone(&fleet_stop),
    );

    let serviced = run_service(&mut mc, consumer, &fleet, &m, &shared, &cfg);
    fleet_stop.store(true, Ordering::Relaxed);
    shared.healthy.store(false, Ordering::Relaxed);
    let outcome = mc.finish();
    fleet.join();

    // Final publication so a last scrape sees the drained pipeline.
    let snap = mc.pipeline_snapshot();
    m.publish(&snap, 0);
    shared.set_snapshot(snapshot_json(&snap, &m, lifetime_serviced + serviced));

    if let Some(prefix) = &cfg.trace_dump {
        dump_traces(&mut mc, prefix, cfg.banks);
    }
    if let Some(path) = &cfg.state_path {
        let identity = [
            cfg.banks as u64,
            cfg.total_blocks,
            cfg.seed,
            cfg.endurance_mean.to_bits(),
            cfg.gap_interval,
        ];
        let img = state::capture(&mut mc, identity, lifetime_serviced + serviced);
        match state::save(path, &img) {
            Ok(()) => eprintln!("wlr-serve: persisted {path}"),
            Err(e) => {
                eprintln!("wlr-serve: cannot persist {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "wlr-serve: drained; serviced {serviced} (lifetime {}), issued {}, stop {:?}",
        lifetime_serviced + serviced,
        outcome.issued,
        outcome.stop,
    );
}

fn build_frontend(cfg: &Config) -> McFrontend {
    McFrontend::builder()
        .banks(cfg.banks)
        .total_blocks(cfg.total_blocks)
        .endurance_mean(cfg.endurance_mean)
        .gap_interval(cfg.gap_interval)
        .seed(cfg.seed)
        .span_sample(cfg.metrics_sample)
        // A service keeps serving while any bank survives.
        .stop_policy(McStopPolicy::Quorum(1.0))
        .build()
        .unwrap_or_else(|e| {
            eprintln!("wlr-serve: bad geometry: {e}");
            std::process::exit(2);
        })
}

/// The service loop: drain the admission ring through the live pipeline,
/// publishing metrics and the JSON snapshot every publish interval.
/// Returns the number of requests serviced.
fn run_service(
    mc: &mut McFrontend,
    mut ring: Consumer,
    fleet: &fleet::Fleet,
    m: &ServeMetrics,
    shared: &http::Shared,
    cfg: &Config,
) -> u64 {
    let publish_every = Duration::from_millis(cfg.publish_ms.max(10));
    mc.with_pipeline(|mc| {
        let mut buf: Vec<u64> = Vec::with_capacity(4096);
        let mut last_publish = Instant::now();
        let mut last_requests = mc.requests();
        let base = mc.requests();
        loop {
            buf.clear();
            let n = ring.pop_into(&mut buf);
            for &addr in &buf {
                mc.submit(addr);
            }
            if n > 0 {
                m.serviced.add(n as u64);
                shared
                    .serviced
                    .store(mc.requests() - base, Ordering::Relaxed);
            }
            if last_publish.elapsed() >= publish_every {
                let dt = last_publish.elapsed().as_secs_f64();
                let snap = mc.pipeline_snapshot();
                let wps = ((snap.requests - last_requests) as f64 / dt) as u64;
                last_requests = snap.requests;
                last_publish = Instant::now();
                m.publish(&snap, wps);
                shared.set_snapshot(snapshot_json(&snap, m, snap.requests));
            }
            if signal::stop_requested() || mc.stopped().is_some() {
                break;
            }
            if n == 0 {
                if fleet.done() && ring.is_empty() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        mc.requests() - base
    })
}

/// Renders a pipeline snapshot (plus service counters) as JSON by hand —
/// flat, stable keys, no dependencies.
fn snapshot_json(snap: &PipelineSnapshot, m: &ServeMetrics, lifetime: u64) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"requests\":{},\"lifetime_requests\":{lifetime},\"ticks\":{},\"drains\":{},\
         \"occupancy\":{},\"dead_banks\":{},\"p50_ticks\":{},\"p99_ticks\":{},\
         \"p999_ticks\":{},\"mean_batch\":{:.3},\"mean_flush_age\":{:.3},\
         \"generated\":{},\"shed\":{},\"links\":{},\"switches\":{},\"banks\":[",
        snap.requests,
        snap.ticks,
        snap.drains,
        snap.total_occupancy(),
        snap.dead_banks(),
        snap.p50_ticks,
        snap.p99_ticks,
        snap.p999_ticks,
        snap.accum.mean_batch(),
        snap.accum.mean_flush_age(),
        m.generated.get(),
        m.shed.get(),
        m.revival.links.get(),
        m.revival.switches.get(),
    );
    for (i, b) in snap.banks.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"bank\":{},\"flushed\":{},\"consumed\":{},\"occupancy\":{},\"dead\":{}}}",
            if i == 0 { "" } else { "," },
            b.bank,
            b.flushed,
            b.consumed,
            b.occupancy,
            b.dead,
        );
    }
    s.push_str("]}");
    s
}

/// Writes each bank's retained trace-ring window to
/// `<prefix>.bank<i>.jsonl`.
fn dump_traces(mc: &mut McFrontend, prefix: &str, banks: usize) {
    for b in 0..banks {
        if let Some(dump) = mc.bank_sim_mut(b).trace_dump() {
            let path = format!("{prefix}.bank{b}.jsonl");
            match std::fs::write(&path, dump) {
                Ok(()) => eprintln!("wlr-serve: trace ring dumped to {path}"),
                Err(e) => eprintln!("wlr-serve: cannot dump {path}: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_mc::{BankPipeStat, PipeAccum};

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = ServeMetrics::new(1);
        m.generated.add(5);
        let json = snapshot_json(
            &PipelineSnapshot {
                requests: 4,
                ticks: 4,
                drains: 1,
                accum: PipeAccum::new(),
                steer_rotations: 0,
                p50_ticks: 1,
                p99_ticks: 2,
                p999_ticks: 3,
                banks: vec![BankPipeStat {
                    bank: 0,
                    flushed: 4,
                    consumed: 4,
                    occupancy: 0,
                    busy_until: 5,
                    dead: false,
                }],
            },
            &m,
            4,
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests\":4"));
        assert!(json.contains("\"generated\":5"));
        assert!(json.contains("\"dead\":false"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
    }
}
