//! `wlr-serve`: the always-on WL-Reviver service daemon.
//!
//! Runs the pinned multi-bank pipeline ([`wlr_mc::McFrontend`]) as a
//! long-lived service: an open-loop client [`fleet`] feeds a bounded
//! admission ring, the service loop drains it through
//! [`McFrontend::with_pipeline`], and a std-only [`http`] endpoint
//! exposes live `/metrics` (Prometheus text), `/healthz`, and
//! `/snapshot`. Observability rides the existing machinery end to end:
//! revival counters arrive through per-bank
//! [`wl_reviver::MetricsSink`]s on the event spine, pipeline gauges come
//! from lag-one [`wlr_mc::PipelineSnapshot`]s, and wall-clock spans are
//! sampled 1-in-N via the front-end's span probes — the hot path never
//! takes a lock for any of it.
//!
//! On SIGTERM/SIGINT (or after `WLR_SERVE_REQUESTS` arrivals) the daemon
//! drains, persists the device image ([`state`]), optionally dumps the
//! per-bank trace rings, and exits. A restart with the same
//! configuration replays the image — wear, page retirements, reviver
//! metadata — and the §III-B recovery scan runs *into the same live
//! sinks*, so the first post-restart scrape already shows the recovery
//! phase counters. Per-bank recovery runs in parallel on the shared
//! worker pool, and the listener only binds once the whole replay (and
//! any persisted quarantine state) is back.
//!
//! The daemon always runs the pipeline in degraded mode: a bank death is
//! quarantined (wreckage rescued into the migrated-line directory,
//! steering excluded, substitute elected) and the service keeps going at
//! N−1. Faults can be injected into the live pipeline with
//! `WLR_CHAOS_PLAN` or `GET /chaos?plan=...` (see [`chaos`]). A panic
//! anywhere in the service loop — driver or pinned worker — unwinds
//! through the pipeline scope with the banks restored, so the crash path
//! still dumps the trace rings and persists the device image before the
//! process exits.

#![deny(unsafe_code)]

mod chaos;
mod config;
mod fleet;
mod http;
mod metrics;
mod signal;
mod state;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wl_reviver::{MetricsSink, TraceRingSink};
use wlr_base::spsc::{self, Consumer};
use wlr_mc::{McFrontend, McStopPolicy, PipelineSnapshot};

use chaos::ChaosCmd;
use config::Config;
use fleet::{FleetConfig, FleetCounters};
use metrics::ServeMetrics;

fn main() {
    let cfg = Config::from_env();
    signal::install();
    // The default hook prints the panic; ours additionally raises the
    // stop flag so the fleet thread winds down while main unwinds
    // toward the persist-and-dump crash path.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        signal::request_stop();
        default_hook(info);
    }));
    let m = ServeMetrics::new(cfg.banks);

    let mut mc = build_frontend(&cfg);
    if cfg.metrics_sample != 0 {
        mc.set_span_histogram(m.span_ns.clone());
    }
    for b in 0..cfg.banks {
        let r = mc
            .bank_sim_mut(b)
            .controller_mut()
            .as_reviver_mut()
            .expect("wlr-serve requires a reviver scheme");
        r.add_sink(Box::new(MetricsSink::new(m.revival.clone())));
        r.add_sink(Box::new(TraceRingSink::new(cfg.trace_ring)));
    }

    let shared = Arc::new(http::Shared::new(Arc::clone(&m.registry)));
    shared.set_scheme(
        wl_reviver::SchemeRegistry::global()
            .get(&cfg.scheme)
            .expect("validated in Config::from_env")
            .name,
    );

    // Restore a persisted image, replaying recovery into the live sinks.
    let mut lifetime_serviced = 0u64;
    if let Some(path) = &cfg.state_path {
        match state::load(path) {
            Ok(Some(img)) => {
                if !img.matches(
                    cfg.banks,
                    cfg.total_blocks,
                    cfg.seed,
                    cfg.endurance_mean,
                    cfg.gap_interval,
                    &cfg.scheme,
                ) {
                    eprintln!("wlr-serve: {path} was captured under a different configuration");
                    std::process::exit(2);
                }
                lifetime_serviced = img.serviced;
                let t = Instant::now();
                let reports = state::restore(&mut mc, &img);
                m.recovery_ms.set(t.elapsed().as_millis() as u64);
                m.restores.inc();
                shared.recovered.store(true, Ordering::Relaxed);
                let mut report = wl_reviver::RecoveryReport::default();
                for r in &reports {
                    report.absorb(r);
                }
                eprintln!(
                    "wlr-serve: restored {path} ({} banks in {:.0?}): {} blocks scanned, \
                     {} links recovered, {} healed, {} quarantined",
                    reports.len(),
                    t.elapsed(),
                    report.blocks_scanned,
                    report.links_recovered,
                    report.healed_links,
                    img.quarantine
                        .as_ref()
                        .map_or(0, |q| q.dead.iter().filter(|&&d| d).count()),
                );
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("wlr-serve: cannot restore {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    // Boot-time chaos plan: bank clauses post into the live mailboxes
    // now, daemon kill points ride into the service loop.
    let mut kill_points: Vec<u64> = Vec::new();
    if let Some(plan) = &cfg.chaos_plan {
        match chaos::parse_plan(plan) {
            Ok(cmds) => {
                eprintln!("wlr-serve: chaos plan armed ({} clauses)", cmds.len());
                apply_chaos(cmds, &mc, &mut kill_points);
            }
            Err(e) => {
                eprintln!("wlr-serve: bad WLR_CHAOS_PLAN: {e}");
                std::process::exit(2);
            }
        }
    }

    // Pre-render a snapshot so the very first `/snapshot` scrape is
    // well-formed even if it beats the service loop's first publish, and
    // only then leave `recovering` — the listener binds after this.
    let boot_snap = mc.pipeline_snapshot();
    m.publish(&boot_snap, 0);
    shared.set_snapshot(snapshot_json(&boot_snap, &m, lifetime_serviced));
    shared.set_state(if boot_snap.dead_banks() > 0 {
        http::ServeState::Degraded
    } else {
        http::ServeState::Ok
    });

    let addr = match http::spawn(&cfg.addr, Arc::clone(&shared)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wlr-serve: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    eprintln!("wlr-serve: listening on {addr}");

    let (producer, consumer) = spsc::ring(cfg.admission_depth);
    let fleet_stop = Arc::new(AtomicBool::new(false));
    let fleet = fleet::spawn(
        FleetConfig {
            space: cfg.total_blocks,
            users: cfg.users,
            rate: cfg.arrival_rate,
            total: cfg.requests,
            hot_shift: (cfg.requests / 8).max(1 << 14),
            seed: cfg.seed,
            policy: cfg.shed_policy,
        },
        producer,
        FleetCounters {
            generated: m.generated.clone(),
            shed: m.shed.clone(),
        },
        Arc::clone(&fleet_stop),
    );

    // Panics in the driver or a pinned worker unwind out of the pipeline
    // scope with the banks restored, so the crash path below can still
    // dump traces and persist the image before exiting.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_service(&mut mc, consumer, &fleet, &m, &shared, &cfg, kill_points)
    }));
    fleet_stop.store(true, Ordering::Relaxed);
    shared.set_state(http::ServeState::Draining);
    let crashed = run.is_err();
    let serviced = match run {
        Ok(n) => n,
        // The crash path loses at most the submits since the last
        // serviced-counter update; the persisted image is still the
        // drained ground truth.
        Err(_) => shared.serviced.load(Ordering::Relaxed),
    };
    let outcome = mc.finish();
    m.read_retries.set(outcome.read_retries);
    m.retry_exhausted.set(outcome.retry_exhausted);
    fleet.join();

    // Final publication so a last scrape sees the drained pipeline.
    let snap = mc.pipeline_snapshot();
    m.publish(&snap, 0);
    shared.set_snapshot(snapshot_json(&snap, &m, lifetime_serviced + serviced));

    if let Some(prefix) = &cfg.trace_dump {
        dump_traces(&mut mc, prefix, cfg.banks);
    }
    if let Some(path) = &cfg.state_path {
        let identity = [
            cfg.banks as u64,
            cfg.total_blocks,
            cfg.seed,
            cfg.endurance_mean.to_bits(),
            cfg.gap_interval,
            state::scheme_hash(&cfg.scheme),
        ];
        let img = state::capture(&mut mc, identity, lifetime_serviced + serviced);
        match state::save(path, &img) {
            Ok(()) => eprintln!("wlr-serve: persisted {path}"),
            Err(e) => {
                eprintln!("wlr-serve: cannot persist {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if crashed {
        eprintln!("wlr-serve: service loop panicked; state persisted, exiting 101");
        std::process::exit(101);
    }
    eprintln!(
        "wlr-serve: drained; serviced {serviced} (lifetime {}), issued {}, \
         shed {}, quarantined {}, stop {:?}",
        lifetime_serviced + serviced,
        outcome.issued,
        m.shed.get(),
        outcome.quarantines,
        outcome.stop,
    );
}

fn build_frontend(cfg: &Config) -> McFrontend {
    McFrontend::builder()
        .banks(cfg.banks)
        .total_blocks(cfg.total_blocks)
        .endurance_mean(cfg.endurance_mean)
        .stack(&cfg.scheme)
        .gap_interval(cfg.gap_interval)
        .seed(cfg.seed)
        .span_sample(cfg.metrics_sample)
        // A service keeps serving while any bank survives.
        .stop_policy(McStopPolicy::Quorum(1.0))
        // Bank deaths quarantine and the array keeps serving at N−k;
        // bit-identical to a plain run when no faults fire.
        .degraded(true)
        .retry_limit(cfg.retry_max)
        .retry_backoff(cfg.retry_backoff)
        .verify_integrity(cfg.verify)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("wlr-serve: bad geometry: {e}");
            std::process::exit(2);
        })
}

/// Routes parsed chaos commands: bank clauses into the front-end's live
/// mailboxes, daemon kill points into the service loop's list.
fn apply_chaos(cmds: Vec<ChaosCmd>, mc: &McFrontend, kill_points: &mut Vec<u64>) {
    for cmd in cmds {
        match cmd {
            ChaosCmd::Bank { bank, chaos } => {
                if bank < mc.num_banks() {
                    mc.inject_chaos(bank, chaos);
                } else {
                    eprintln!("wlr-serve: chaos clause targets missing bank {bank}, ignored");
                }
            }
            ChaosCmd::DaemonKill(n) => kill_points.push(n),
        }
    }
}

/// The service loop: drain the admission ring through the live pipeline,
/// publishing metrics and the JSON snapshot every publish interval.
/// Returns the number of requests serviced.
fn run_service(
    mc: &mut McFrontend,
    mut ring: Consumer,
    fleet: &fleet::Fleet,
    m: &ServeMetrics,
    shared: &http::Shared,
    cfg: &Config,
    mut kill_points: Vec<u64>,
) -> u64 {
    let publish_every = Duration::from_millis(cfg.publish_ms.max(10));
    mc.with_pipeline(|mc| {
        let mut buf: Vec<u64> = Vec::with_capacity(4096);
        let mut last_publish = Instant::now();
        let mut last_requests = mc.requests();
        let base = mc.requests();
        loop {
            // Admin chaos lands here: bank clauses go straight into the
            // live mailboxes, kill points join the armed list.
            let cmds = shared.take_chaos();
            if !cmds.is_empty() {
                apply_chaos(cmds, mc, &mut kill_points);
            }
            buf.clear();
            let n = ring.pop_into(&mut buf);
            for &addr in &buf {
                mc.submit(addr);
            }
            let serviced_now = mc.requests() - base;
            if n > 0 {
                m.serviced.add(n as u64);
                shared.serviced.store(serviced_now, Ordering::Relaxed);
            }
            if kill_points.iter().any(|&k| serviced_now >= k) {
                // The whole-daemon kill point: no drain, no persist —
                // the next boot recovers from the last committed image.
                eprintln!(
                    "wlr-serve: chaos kill point reached at {serviced_now} serviced, aborting"
                );
                std::process::abort();
            }
            if last_publish.elapsed() >= publish_every {
                let dt = last_publish.elapsed().as_secs_f64();
                let snap = mc.pipeline_snapshot();
                let wps = ((snap.requests - last_requests) as f64 / dt) as u64;
                last_requests = snap.requests;
                last_publish = Instant::now();
                m.publish(&snap, wps);
                shared.set_state(if snap.dead_banks() > 0 {
                    http::ServeState::Degraded
                } else {
                    http::ServeState::Ok
                });
                shared.set_snapshot(snapshot_json(&snap, m, snap.requests));
            }
            if signal::stop_requested() || mc.stopped().is_some() {
                break;
            }
            if n == 0 {
                if fleet.done() && ring.is_empty() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        mc.requests() - base
    })
}

/// Renders a pipeline snapshot (plus service counters) as JSON by hand —
/// flat, stable keys, no dependencies.
fn snapshot_json(snap: &PipelineSnapshot, m: &ServeMetrics, lifetime: u64) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"requests\":{},\"lifetime_requests\":{lifetime},\"ticks\":{},\"drains\":{},\
         \"occupancy\":{},\"dead_banks\":{},\"p50_ticks\":{},\"p99_ticks\":{},\
         \"p999_ticks\":{},\"mean_batch\":{:.3},\"mean_flush_age\":{:.3},\
         \"generated\":{},\"shed\":{},\"links\":{},\"switches\":{},\
         \"quarantines\":{},\"redirected\":{},\"migrated_lines\":{},\
         \"directory_lines\":{},\"banks\":[",
        snap.requests,
        snap.ticks,
        snap.drains,
        snap.total_occupancy(),
        snap.dead_banks(),
        snap.p50_ticks,
        snap.p99_ticks,
        snap.p999_ticks,
        snap.accum.mean_batch(),
        snap.accum.mean_flush_age(),
        m.generated.get(),
        m.shed.get(),
        m.revival.links.get(),
        m.revival.switches.get(),
        snap.quarantines,
        snap.redirected,
        snap.migrated_lines,
        snap.directory_lines,
    );
    for (i, b) in snap.banks.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"bank\":{},\"flushed\":{},\"consumed\":{},\"occupancy\":{},\"dead\":{}}}",
            if i == 0 { "" } else { "," },
            b.bank,
            b.flushed,
            b.consumed,
            b.occupancy,
            b.dead,
        );
    }
    s.push_str("]}");
    s
}

/// Writes each bank's retained trace-ring window to
/// `<prefix>.bank<i>.jsonl`.
fn dump_traces(mc: &mut McFrontend, prefix: &str, banks: usize) {
    for b in 0..banks {
        if let Some(dump) = mc.bank_sim_mut(b).trace_dump() {
            let path = format!("{prefix}.bank{b}.jsonl");
            match std::fs::write(&path, dump) {
                Ok(()) => eprintln!("wlr-serve: trace ring dumped to {path}"),
                Err(e) => eprintln!("wlr-serve: cannot dump {path}: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_mc::{BankPipeStat, PipeAccum};

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = ServeMetrics::new(1);
        m.generated.add(5);
        let json = snapshot_json(
            &PipelineSnapshot {
                requests: 4,
                ticks: 4,
                drains: 1,
                accum: PipeAccum::new(),
                steer_rotations: 0,
                p50_ticks: 1,
                p99_ticks: 2,
                p999_ticks: 3,
                quarantines: 0,
                redirected: 0,
                migrated_lines: 0,
                directory_lines: 0,
                banks: vec![BankPipeStat {
                    bank: 0,
                    flushed: 4,
                    consumed: 4,
                    occupancy: 0,
                    busy_until: 5,
                    dead: false,
                }],
            },
            &m,
            4,
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests\":4"));
        assert!(json.contains("\"generated\":5"));
        assert!(json.contains("\"dead\":false"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
    }
}
