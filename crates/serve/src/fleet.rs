//! The open-loop client fleet: a generator thread simulating a large
//! user population issuing writes at a configured arrival rate,
//! independent of how fast the service drains them.
//!
//! Arrivals flow through a bounded SPSC admission ring. When the ring
//! fills, the fleet either sheds the arrival (open-loop honesty: the
//! request is lost and counted) or blocks until there is room
//! (closed-loop backpressure), per [`ShedPolicy`].
//!
//! Traffic model: 80% of arrivals come from a contiguous *hot set* of
//! users (1/64th of the population) whose window shifts periodically;
//! the rest are uniform over the population. Each user hashes to a fixed
//! block address, so hot users create hot blocks — the access pattern
//! wear leveling exists to survive.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wlr_base::rng::{Rng, SplitMix64};
use wlr_base::spsc::Producer;
use wlr_base::stats::registry::Counter;

/// What to do with an arrival when the admission ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Drop the arrival and count it (`wlr_serve_shed_total`).
    Shed,
    /// Wait for ring space (converts the open loop into backpressure).
    Block,
}

/// Fleet parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Global block-address space arrivals map into.
    pub space: u64,
    /// Simulated user population.
    pub users: u64,
    /// Arrivals per second (0 = unpaced, as fast as the ring accepts).
    pub rate: u64,
    /// Total arrivals to generate (0 = until stopped).
    pub total: u64,
    /// Arrivals between hot-set shifts.
    pub hot_shift: u64,
    /// RNG seed for the traffic stream.
    pub seed: u64,
    /// Full-ring behavior.
    pub policy: ShedPolicy,
}

/// Handle to the generator thread.
pub struct Fleet {
    handle: std::thread::JoinHandle<()>,
    done: Arc<AtomicBool>,
}

impl Fleet {
    /// Whether the generator has produced its last arrival.
    pub fn done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Joins the generator thread.
    pub fn join(self) {
        self.handle.join().expect("fleet generator panicked");
    }
}

/// Counters the fleet publishes (registered by the caller).
#[derive(Debug, Clone)]
pub struct FleetCounters {
    /// Arrivals generated.
    pub generated: Counter,
    /// Arrivals dropped at a full ring under [`ShedPolicy::Shed`].
    pub shed: Counter,
}

/// Derives the block address a user's writes land on.
#[inline]
pub fn user_address(seed: u64, user: u64, space: u64) -> u64 {
    SplitMix64::mix(seed ^ 0x5EED_F1EE7, user) % space
}

/// Spawns the generator. It runs until `total` arrivals are produced or
/// `stop` is raised, then sets its done flag and exits.
pub fn spawn(
    cfg: FleetConfig,
    mut ring: Producer,
    counters: FleetCounters,
    stop: Arc<AtomicBool>,
) -> Fleet {
    let done = Arc::new(AtomicBool::new(false));
    let done_flag = Arc::clone(&done);
    let handle = std::thread::Builder::new()
        .name("wlr-fleet".into())
        .spawn(move || {
            generate(&cfg, &mut ring, &counters, &stop);
            done_flag.store(true, Ordering::Release);
        })
        .expect("spawn fleet generator");
    Fleet { handle, done }
}

fn generate(cfg: &FleetConfig, ring: &mut Producer, counters: &FleetCounters, stop: &AtomicBool) {
    let mut rng = Rng::stream(cfg.seed, 0xF1EE7);
    let hot_width = (cfg.users / 64).max(1);
    let mut hot_start: u64 = 0;
    let mut generated: u64 = 0;
    let started = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        if cfg.total != 0 && generated >= cfg.total {
            return;
        }
        // Open-loop pacing: how many arrivals the wall clock owes us.
        let due = if cfg.rate == 0 {
            generated + 1024
        } else {
            started.elapsed().as_micros() as u64 * cfg.rate / 1_000_000
        };
        if generated >= due {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let burst = (due - generated).min(1024);
        for _ in 0..burst {
            if cfg.total != 0 && generated >= cfg.total {
                return;
            }
            let user = if rng.gen_bool(0.8) {
                hot_start + rng.gen_range(hot_width)
            } else {
                rng.gen_range(cfg.users)
            };
            let addr = user_address(cfg.seed, user % cfg.users, cfg.space);
            generated += 1;
            counters.generated.inc();
            if cfg.hot_shift != 0 && generated.is_multiple_of(cfg.hot_shift) {
                hot_start = (hot_start + hot_width / 2) % cfg.users;
            }
            if !ring.push(addr) {
                match cfg.policy {
                    ShedPolicy::Shed => counters.shed.inc(),
                    ShedPolicy::Block => loop {
                        std::thread::sleep(Duration::from_micros(50));
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        if ring.push(addr) {
                            break;
                        }
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_base::spsc;

    fn counters() -> FleetCounters {
        FleetCounters {
            generated: Counter::new(),
            shed: Counter::new(),
        }
    }

    #[test]
    fn bounded_fleet_generates_exactly_total_in_range() {
        let (prod, mut cons) = spsc::ring(1 << 12);
        let c = counters();
        let stop = Arc::new(AtomicBool::new(false));
        let fleet = spawn(
            FleetConfig {
                space: 4096,
                users: 10_000,
                rate: 0,
                total: 2_000,
                hot_shift: 500,
                seed: 11,
                policy: ShedPolicy::Shed,
            },
            prod,
            c.clone(),
            stop,
        );
        fleet.join();
        assert_eq!(c.generated.get(), 2_000);
        let mut buf = Vec::new();
        let mut popped = 0;
        while cons.pop_into(&mut buf) > 0 {
            for &a in &buf {
                assert!(a < 4096, "address {a} out of space");
            }
            popped += buf.len() as u64;
            buf.clear();
        }
        assert_eq!(popped + c.shed.get(), 2_000, "every arrival lands or sheds");
    }

    #[test]
    fn shed_policy_drops_at_full_ring() {
        // Tiny ring, nobody consuming: almost everything must shed.
        let (prod, _cons) = spsc::ring(8);
        let c = counters();
        let stop = Arc::new(AtomicBool::new(false));
        let fleet = spawn(
            FleetConfig {
                space: 1024,
                users: 100,
                rate: 0,
                total: 1_000,
                hot_shift: 0,
                seed: 3,
                policy: ShedPolicy::Shed,
            },
            prod,
            c.clone(),
            stop,
        );
        fleet.join();
        assert_eq!(c.generated.get(), 1_000);
        assert!(c.shed.get() >= 1_000 - 8, "shed {}", c.shed.get());
    }

    #[test]
    fn traffic_is_hot_set_skewed() {
        let (prod, mut cons) = spsc::ring(1 << 14);
        let c = counters();
        let stop = Arc::new(AtomicBool::new(false));
        let fleet = spawn(
            FleetConfig {
                space: 1 << 12,
                users: 1 << 16,
                rate: 0,
                total: 10_000,
                hot_shift: 0, // fixed hot set for a clean skew measurement
                seed: 5,
                policy: ShedPolicy::Block,
            },
            prod,
            c.clone(),
            Arc::clone(&stop),
        );
        fleet.join();
        let hot_width = (1u64 << 16) / 64;
        let hot: std::collections::HashSet<u64> = (0..hot_width)
            .map(|u| user_address(5, u, 1 << 12))
            .collect();
        let mut buf = Vec::new();
        let (mut hot_hits, mut n) = (0u64, 0u64);
        while cons.pop_into(&mut buf) > 0 {
            for &a in &buf {
                n += 1;
                if hot.contains(&a) {
                    hot_hits += 1;
                }
            }
            buf.clear();
        }
        assert_eq!(n, 10_000);
        // ~80% of traffic targets the hot set (plus uniform spillover).
        assert!(hot_hits > n * 7 / 10, "hot hits {hot_hits}/{n}");
    }
}
