//! SIGTERM/SIGINT → a process-wide stop flag.
//!
//! The only unsafe code in the daemon: registering the handler through
//! libc's `signal` (which std already links). The handler does nothing
//! but store to a static atomic — async-signal-safe by construction.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static STOP: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::Relaxed);
}

/// Installs the handlers. Call once at boot.
pub fn install() {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// Whether a termination signal has arrived.
pub fn stop_requested() -> bool {
    STOP.load(Ordering::Relaxed)
}

/// Raises the stop flag from inside the process (panic hook, admin
/// paths) — same effect as a SIGTERM.
pub fn request_stop() {
    STOP.store(true, Ordering::Relaxed);
}
