//! Crash persistence: the device image the daemon writes on shutdown
//! and replays at boot.
//!
//! The image captures, per bank, everything the paper models as durable:
//! the PCM wear state (replayed exactly through
//! `PcmDevice::restore_wear_image`), the OS page-retirement *order*
//! (replayed through `OsMemory::retire_page` — the table is a pure
//! function of that order), and the reviver's persisted metadata
//! (`PersistedMeta`, restored via `RevivedController::restore_from`,
//! which runs the full §III-B recovery scan and emits every phase into
//! the live sinks). Volatile state — wear-leveling registers, caches,
//! queue contents — is deliberately *not* captured: a restart loses it,
//! exactly as a power cut would, and recovery rebuilds what the paper
//! says is rebuildable.
//!
//! Since the degraded-mode work the image also carries the front-end's
//! quarantine state (dead banks, substitute chain, the migrated-line
//! directory), so a daemon that lost a bank resumes serving at N−1
//! immediately after recovery instead of rediscovering the death.
//!
//! Format: little-endian `u64` words, a leading magic, a trailing commit
//! marker, written to a temp file and renamed into place so a crash
//! mid-save leaves the previous image intact.

use std::io;
use std::path::Path;

use wl_reviver::{PersistedMeta, RecoveryReport};
use wlr_base::pool::{run_pooled, PooledJob};
use wlr_base::PageId;
use wlr_mc::{McFrontend, QuarantineImage};

const MAGIC: u64 = 0x574c_5253_4552_5633; // "WLRSERV3"
const COMMIT: u64 = 0x434f_4d4d_4954_4f4b; // "COMMITOK"

/// FNV-1a of a registry stack name — the image identity stores the hash
/// so the header stays fixed-width `u64` words.
pub fn scheme_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One bank's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct BankImage {
    /// Full device wear snapshot (including reviver-reserved blocks).
    pub wear: Vec<u32>,
    /// Dead block indices at capture time (verification only — deaths
    /// replay deterministically from the wear image).
    pub dead: Vec<u64>,
    /// OS page retirements, in retirement order.
    pub retirements: Vec<u64>,
    /// Serialized [`PersistedMeta`].
    pub meta: Vec<u8>,
}

/// The whole daemon image: the configuration identity it was captured
/// under, plus every bank.
#[derive(Debug, Clone, PartialEq)]
pub struct StateImage {
    /// Bank count.
    pub banks: u64,
    /// Global block space.
    pub total_blocks: u64,
    /// Experiment seed.
    pub seed: u64,
    /// `endurance_mean.to_bits()`.
    pub endurance_bits: u64,
    /// Start-Gap ψ.
    pub gap_interval: u64,
    /// [`scheme_hash`] of the registry stack the banks were built with.
    pub scheme: u64,
    /// Requests serviced over all prior lifetimes (informational).
    pub serviced: u64,
    /// Quarantine state at capture time (`None` when the front-end is
    /// not running in degraded mode).
    pub quarantine: Option<QuarantineImage>,
    /// Per-bank durable state, in bank order.
    pub per_bank: Vec<BankImage>,
}

impl StateImage {
    /// Whether this image was captured under the same configuration.
    #[allow(clippy::too_many_arguments)]
    pub fn matches(
        &self,
        banks: usize,
        total_blocks: u64,
        seed: u64,
        endurance_mean: f64,
        gap_interval: u64,
        scheme: &str,
    ) -> bool {
        self.banks == banks as u64
            && self.total_blocks == total_blocks
            && self.seed == seed
            && self.endurance_bits == endurance_mean.to_bits()
            && self.gap_interval == gap_interval
            && self.scheme == scheme_hash(scheme)
    }

    /// Serializes to the on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.word(MAGIC);
        for v in [
            self.banks,
            self.total_blocks,
            self.seed,
            self.endurance_bits,
            self.gap_interval,
            self.scheme,
            self.serviced,
        ] {
            w.word(v);
        }
        match &self.quarantine {
            None => w.word(0),
            Some(q) => {
                w.word(1);
                w.word(q.dead.len() as u64);
                for &d in &q.dead {
                    w.word(u64::from(d));
                }
                w.word(q.substitutes.len() as u64);
                for &s in &q.substitutes {
                    w.word(s);
                }
                w.word(q.directory.len() as u64);
                for &(addr, tag) in &q.directory {
                    w.word(addr);
                    w.word(tag);
                }
                w.word(q.dir_seq);
            }
        }
        for b in &self.per_bank {
            w.word(b.wear.len() as u64);
            for &x in &b.wear {
                w.word(x as u64);
            }
            w.word(b.dead.len() as u64);
            for &x in &b.dead {
                w.word(x);
            }
            w.word(b.retirements.len() as u64);
            for &x in &b.retirements {
                w.word(x);
            }
            w.word(b.meta.len() as u64);
            w.bytes(&b.meta);
        }
        w.word(COMMIT);
        w.out
    }

    /// Parses the on-disk layout, rejecting truncated or uncommitted
    /// images.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<StateImage> {
        let mut r = Reader { bytes, pos: 0 };
        if r.word()? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let banks = r.word()?;
        let total_blocks = r.word()?;
        let seed = r.word()?;
        let endurance_bits = r.word()?;
        let gap_interval = r.word()?;
        let scheme = r.word()?;
        let serviced = r.word()?;
        if banks > 4096 {
            return Err(corrupt("implausible bank count"));
        }
        let quarantine = match r.word()? {
            0 => None,
            1 => {
                let dead = r.vec()?.into_iter().map(|d| d != 0).collect();
                let substitutes = r.vec()?;
                let pairs = r.word()? as usize;
                if pairs > bytes.len() / 16 {
                    return Err(corrupt("implausible directory length"));
                }
                let directory = (0..pairs)
                    .map(|_| Ok((r.word()?, r.word()?)))
                    .collect::<io::Result<Vec<_>>>()?;
                let dir_seq = r.word()?;
                Some(QuarantineImage {
                    dead,
                    substitutes,
                    directory,
                    dir_seq,
                })
            }
            _ => return Err(corrupt("bad quarantine flag")),
        };
        let mut per_bank = Vec::with_capacity(banks as usize);
        for _ in 0..banks {
            let wear = r.vec()?.into_iter().map(|w| w as u32).collect();
            let dead = r.vec()?;
            let retirements = r.vec()?;
            let meta_len = r.word()? as usize;
            let meta = r.take(meta_len)?.to_vec();
            per_bank.push(BankImage {
                wear,
                dead,
                retirements,
                meta,
            });
        }
        if r.word()? != COMMIT {
            return Err(corrupt("missing commit marker"));
        }
        Ok(StateImage {
            banks,
            total_blocks,
            seed,
            endurance_bits,
            gap_interval,
            scheme,
            serviced,
            quarantine,
            per_bank,
        })
    }
}

fn corrupt(why: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("state image: {why}"))
}

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn word(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
        // Pad to a word boundary so subsequent words stay aligned.
        while !self.out.len().is_multiple_of(8) {
            self.out.push(0);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn word(&mut self) -> io::Result<u64> {
        let end = self.pos + 8;
        if end > self.bytes.len() {
            return Err(corrupt("truncated"));
        }
        let v = u64::from_le_bytes(self.bytes[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }
    fn vec(&mut self) -> io::Result<Vec<u64>> {
        let n = self.word()? as usize;
        if n > self.bytes.len() / 8 {
            return Err(corrupt("implausible length"));
        }
        (0..n).map(|_| self.word()).collect()
    }
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        let end = self.pos + n;
        if end > self.bytes.len() {
            return Err(corrupt("truncated"));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = (end + 7) & !7; // skip the word padding
        Ok(slice)
    }
}

/// Captures the durable state of every bank. Requires the pipeline to be
/// quiescent (no workers active, queues and rings drained — i.e. after
/// [`McFrontend::finish`]).
pub fn capture(mc: &mut McFrontend, cfg_identity: [u64; 6], serviced: u64) -> StateImage {
    let per_bank = (0..mc.num_banks())
        .map(|b| {
            let sim = mc.bank_sim_mut(b);
            let dev = sim.controller().device();
            let wear = dev.wear_snapshot();
            let dead = dev.dead_iter().map(|da| da.index()).collect();
            let retirements = sim
                .os()
                .retirement_log()
                .iter()
                .map(|p| p.index())
                .collect();
            let meta = sim
                .controller()
                .as_reviver()
                .expect("wlr-serve requires a reviver scheme")
                .persisted_meta()
                .to_bytes();
            BankImage {
                wear,
                dead,
                retirements,
                meta,
            }
        })
        .collect();
    let [banks, total_blocks, seed, endurance_bits, gap_interval, scheme] = cfg_identity;
    StateImage {
        banks,
        total_blocks,
        seed,
        endurance_bits,
        gap_interval,
        scheme,
        serviced,
        quarantine: mc.quarantine_image(),
        per_bank,
    }
}

/// Replays an image into a *freshly built* front-end: per bank, wear
/// image → OS retirement order → reviver metadata, the last via
/// `restore_from`, whose recovery scan emits into whatever sinks are
/// already attached. Banks are independent stacks, so their recovery
/// scans run in parallel on the shared worker pool; once every bank is
/// back, any persisted quarantine state is re-applied so a degraded
/// array resumes serving at N−k without rediscovering the deaths.
/// Returns the per-bank recovery reports, in bank order.
pub fn restore(mc: &mut McFrontend, img: &StateImage) -> Vec<RecoveryReport> {
    assert_eq!(
        img.per_bank.len(),
        mc.num_banks(),
        "image bank count matches the front-end"
    );
    let jobs: Vec<PooledJob<RecoveryReport>> = mc
        .banks_mut()
        .iter_mut()
        .zip(&img.per_bank)
        .map(|(bank, bank_img)| {
            Box::new(move || {
                let b = bank.id();
                let sim = bank.sim_mut();
                sim.controller_mut()
                    .device_mut()
                    .restore_wear_image(&bank_img.wear);
                for &page in &bank_img.retirements {
                    sim.os_mut().retire_page(PageId::new(page));
                }
                let meta = PersistedMeta::from_bytes(&bank_img.meta)
                    .expect("committed image carries parseable reviver metadata");
                let report = sim
                    .controller_mut()
                    .as_reviver_mut()
                    .expect("wlr-serve requires a reviver scheme")
                    .restore_from(meta);
                let dev = sim.controller().device();
                let dead: Vec<u64> = dev.dead_iter().map(|da| da.index()).collect();
                assert_eq!(
                    dead, bank_img.dead,
                    "bank {b}: wear replay must reproduce the captured death set"
                );
                report
            }) as PooledJob<RecoveryReport>
        })
        .collect();
    let reports = run_pooled(jobs);
    if let Some(q) = &img.quarantine {
        mc.restore_quarantine(q);
    }
    reports
}

/// Atomically writes `img` to `path` (temp file + rename).
pub fn save(path: &str, img: &StateImage) -> io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, img.to_bytes())?;
    std::fs::rename(&tmp, path)
}

/// Loads the image at `path`; `Ok(None)` when no image exists yet.
pub fn load(path: &str) -> io::Result<Option<StateImage>> {
    if !Path::new(path).exists() {
        return Ok(None);
    }
    let bytes = std::fs::read(path)?;
    StateImage::from_bytes(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_base::rng::Rng;

    fn worn_frontend(seed: u64) -> (McFrontend, u64) {
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 10)
            .endurance_mean(300.0)
            .gap_interval(16)
            .seed(seed)
            .stop_policy(wlr_mc::McStopPolicy::Quorum(1.0))
            .build()
            .unwrap();
        let mut rng = Rng::seed_from(seed);
        // Enough traffic to wear 300-endurance blocks into failure, so
        // the image carries real links, retirements, and deaths.
        let n = 400_000;
        mc.with_pipeline(|mc| {
            for _ in 0..n {
                mc.submit(rng.gen_range(1 << 10));
            }
        });
        mc.finish();
        (mc, n)
    }

    fn fresh_like(seed: u64) -> McFrontend {
        McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 10)
            .endurance_mean(300.0)
            .gap_interval(16)
            .seed(seed)
            .stop_policy(wlr_mc::McStopPolicy::Quorum(1.0))
            .build()
            .unwrap()
    }

    fn identity() -> [u64; 6] {
        [
            2,
            1 << 10,
            23,
            (300.0f64).to_bits(),
            16,
            scheme_hash("reviver-sg"),
        ]
    }

    #[test]
    fn image_round_trips_through_bytes() {
        let (mut mc, n) = worn_frontend(23);
        let img = capture(&mut mc, identity(), n);
        assert!(
            img.per_bank.iter().any(|b| !b.retirements.is_empty()),
            "a worn run retires pages (endurance 300 over 400k writes)"
        );
        let back = StateImage::from_bytes(&img.to_bytes()).expect("round trip");
        assert_eq!(back, img);
        assert!(back.matches(2, 1 << 10, 23, 300.0, 16, "reviver-sg"));
        assert!(!back.matches(4, 1 << 10, 23, 300.0, 16, "reviver-sg"));
        assert!(
            !back.matches(2, 1 << 10, 23, 300.0, 16, "softwear-wlr"),
            "an image never restores into a different stack"
        );
    }

    #[test]
    fn quarantine_section_round_trips() {
        let (mut mc, n) = worn_frontend(23);
        let mut img = capture(&mut mc, identity(), n);
        assert!(
            img.quarantine.is_none(),
            "plain front-end has no quarantine"
        );
        img.quarantine = Some(QuarantineImage {
            dead: vec![false, true],
            substitutes: vec![u64::MAX, 0],
            directory: vec![(7, 1), (9, (1 << 63) + 2)],
            dir_seq: (1 << 63) + 2,
        });
        let back = StateImage::from_bytes(&img.to_bytes()).expect("round trip");
        assert_eq!(back, img);
    }

    #[test]
    fn truncated_or_uncommitted_images_are_rejected() {
        let (mut mc, n) = worn_frontend(23);
        let bytes = capture(&mut mc, identity(), n).to_bytes();
        assert!(StateImage::from_bytes(&bytes[..bytes.len() - 8]).is_err());
        assert!(StateImage::from_bytes(&bytes[..64]).is_err());
        let mut flipped = bytes.clone();
        flipped[0] ^= 0xff;
        assert!(StateImage::from_bytes(&flipped).is_err());
    }

    #[test]
    fn restore_reproduces_the_durable_state() {
        let (mut worn, n) = worn_frontend(23);
        let img = capture(&mut worn, identity(), n);
        let mut fresh = fresh_like(23);
        let reports = restore(&mut fresh, &img);
        assert_eq!(reports.len(), 2, "one report per bank");
        let scanned: u64 = reports.iter().map(|r| r.blocks_scanned).sum();
        assert!(scanned > 0, "recovery actually scanned");
        for b in 0..2 {
            let a = worn.bank_sim_mut(b);
            let restored_wear = a.controller().device().wear_snapshot();
            let restored_meta = a
                .controller()
                .as_reviver()
                .unwrap()
                .persisted_meta()
                .to_bytes();
            let os_retired = a.os().retired_pages();
            let f = fresh.bank_sim_mut(b);
            assert_eq!(f.controller().device().wear_snapshot(), restored_wear);
            assert_eq!(
                f.controller()
                    .as_reviver()
                    .unwrap()
                    .persisted_meta()
                    .to_bytes(),
                restored_meta,
                "bank {b}: reviver metadata survives the round trip"
            );
            assert_eq!(f.os().retired_pages(), os_retired);
        }
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let (mut mc, n) = worn_frontend(23);
        let img = capture(&mut mc, identity(), n);
        let dir = std::env::temp_dir();
        let path = dir
            .join(format!("wlr_serve_state_test_{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        save(&path, &img).expect("save");
        let back = load(&path).expect("load").expect("image exists");
        assert_eq!(back, img);
        std::fs::remove_file(&path).ok();
        assert!(load(&path).expect("missing file is not an error").is_none());
    }
}
