//! The runtime chaos plan: a tiny grammar for injecting faults into the
//! live daemon, shared by the `WLR_CHAOS_PLAN` boot knob and the
//! `/chaos` admin endpoint.
//!
//! A plan is a `;`-separated list of clauses:
//!
//! ```text
//! bank<B>:die@<N>              kill bank B after N more issued writes
//! bank<B>:reads@<I>+<L>        transient-read burst: L consecutive reads
//!                              starting I reads from now on bank B
//! bank<B>:torn@<point>:<K>     power loss at the K-th upcoming crash
//!                              point (switch|migration|retire|link) on
//!                              bank B — a torn-metadata window the
//!                              recovery scan must repair
//! daemon:kill@<N>              abort the whole process once N requests
//!                              have been serviced this lifetime
//! ```
//!
//! Bank clauses become [`BankChaos`] commands posted through the
//! front-end's live chaos mailboxes; `daemon:kill` arms a kill point the
//! service loop checks against its serviced counter. Parsing is strict —
//! an unrecognized clause rejects the whole plan, so a typo'd storm
//! never half-applies.

use wlr_mc::{BankChaos, CrashPoint, FaultPlan};

/// One parsed chaos clause.
#[derive(Debug)]
pub enum ChaosCmd {
    /// Post `chaos` to bank `bank`'s mailbox.
    Bank {
        /// Target physical bank.
        bank: usize,
        /// The command to post.
        chaos: BankChaos,
    },
    /// Abort the daemon once this many requests have been serviced in
    /// the current lifetime.
    DaemonKill(u64),
}

/// Parses a full plan (`;`-separated clauses, blanks ignored).
pub fn parse_plan(plan: &str) -> Result<Vec<ChaosCmd>, String> {
    plan.split(';')
        .map(str::trim)
        .filter(|c| !c.is_empty())
        .map(parse_clause)
        .collect()
}

fn parse_clause(clause: &str) -> Result<ChaosCmd, String> {
    let bad = || format!("unrecognized chaos clause: {clause:?}");
    let (target, action) = clause.split_once(':').ok_or_else(bad)?;
    if target == "daemon" {
        let n = action.strip_prefix("kill@").ok_or_else(bad)?;
        return Ok(ChaosCmd::DaemonKill(parse_u64(n, clause)?));
    }
    let bank: usize = target
        .strip_prefix("bank")
        .ok_or_else(bad)?
        .parse()
        .map_err(|_| bad())?;
    let chaos = if let Some(n) = action.strip_prefix("die@") {
        BankChaos::KillAfter(parse_u64(n, clause)?)
    } else if let Some(burst) = action.strip_prefix("reads@") {
        let (start, len) = burst.split_once('+').ok_or_else(bad)?;
        BankChaos::Faults(
            FaultPlan::new()
                .transient_read_burst(parse_u64(start, clause)?, parse_u64(len, clause)?),
        )
    } else if let Some(torn) = action.strip_prefix("torn@") {
        let (point, k) = torn.split_once(':').ok_or_else(bad)?;
        let point = match point {
            "switch" => CrashPoint::MidSwitch,
            "migration" => CrashPoint::MidMigration,
            "retire" => CrashPoint::MidRetire,
            "link" => CrashPoint::MidLink,
            _ => return Err(bad()),
        };
        BankChaos::Faults(FaultPlan::new().power_loss_at_point(point, parse_u64(k, clause)?))
    } else {
        return Err(bad());
    };
    Ok(ChaosCmd::Bank { bank, chaos })
}

fn parse_u64(s: &str, clause: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("bad number {s:?} in chaos clause {clause:?}"))
}

/// Minimal percent-decoding for the `/chaos?plan=...` query string: the
/// plan grammar only needs `%3B` (`;`), `%3A` (`:`), `%2B` (`+`), `%40`
/// (`@`) and `+`-as-space, but any valid `%xx` escape decodes.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grammar_parses() {
        let plan = "bank0:die@500; bank2:reads@100+8;bank1:torn@switch:2 ; daemon:kill@10000;";
        let cmds = parse_plan(plan).expect("valid plan");
        assert_eq!(cmds.len(), 4);
        assert!(matches!(
            cmds[0],
            ChaosCmd::Bank {
                bank: 0,
                chaos: BankChaos::KillAfter(500)
            }
        ));
        assert!(matches!(
            cmds[1],
            ChaosCmd::Bank {
                bank: 2,
                chaos: BankChaos::Faults(_)
            }
        ));
        assert!(matches!(cmds[3], ChaosCmd::DaemonKill(10_000)));
    }

    #[test]
    fn every_torn_point_is_spellable() {
        for p in ["switch", "migration", "retire", "link"] {
            assert!(parse_plan(&format!("bank0:torn@{p}:1")).is_ok(), "{p}");
        }
    }

    #[test]
    fn bad_clauses_reject_the_whole_plan() {
        for bad in [
            "bank0:die@500; bankX:die@1",
            "bank0:explode@1",
            "daemon:kill@",
            "bank0:torn@gap:1",
            "bank0:reads@100",
            "nonsense",
        ] {
            assert!(parse_plan(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(parse_plan("").expect("empty is fine").is_empty());
        assert!(parse_plan(" ; ;").expect("blank clauses drop").is_empty());
    }

    #[test]
    fn percent_decoding_covers_the_grammar() {
        assert_eq!(
            percent_decode("bank0%3Adie%40500%3B%20daemon%3Akill%4099"),
            "bank0:die@500; daemon:kill@99"
        );
        assert_eq!(percent_decode("100%2B8"), "100+8");
        assert_eq!(percent_decode("%zz%1"), "%zz%1", "bad escapes pass through");
    }
}
