//! A dependency-free microbenchmark harness.
//!
//! The bench targets under `benches/` are plain `harness = false`
//! binaries; this module gives them a shared calibrate-then-measure loop
//! (geometric warmup until the measured batch is long enough to swamp
//! timer noise) and an aligned one-line-per-benchmark report, so the
//! repo needs no external benchmark framework.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum measured batch duration; long enough that `Instant` overhead
/// and scheduler jitter are noise.
const TARGET: Duration = Duration::from_millis(200);

/// One measured result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` label.
    pub label: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per second (`1e9 / ns_per_iter`).
    pub per_sec: f64,
}

/// Times `f` until the batch runs for at least the target interval
/// (`TARGET`, currently 200 ms), growing the
/// iteration count geometrically, then prints and returns the result.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) -> Measurement {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET {
            let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
            let m = Measurement {
                label: label.to_string(),
                ns_per_iter,
                per_sec: 1e9 / ns_per_iter,
            };
            println!(
                "{:<44} {:>14.1} ns/iter {:>16.0} /s",
                m.label, m.ns_per_iter, m.per_sec
            );
            return m;
        }
        // Scale the next batch toward the target in one or two hops.
        iters = iters.saturating_mul(4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let m = bench("test/noop_add", || std::hint::black_box(1u64) + 1);
        assert!(m.ns_per_iter > 0.0);
        assert!(m.per_sec > 0.0);
    }
}
