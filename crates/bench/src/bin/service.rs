//! `service` — multi-bank front-end service benchmark, tracked over time.
//!
//! Sweeps the bank count (1 → 16 by default) over the same global
//! address space and request stream, and reports sustained service
//! throughput (wall-clock writes per second) plus queueing-latency
//! percentiles per configuration. Every configuration must run its full
//! request stream to completion — a dead bank mid-sweep is a failure.
//! Results go to `BENCH_service.json` with the same baseline discipline
//! as `bench_core`:
//!
//! * first run (no file): records the numbers as both `baseline` and
//!   `current`;
//! * later runs: preserves the existing `baseline` verbatim, replaces
//!   `current`, and reports `speedup_vs_baseline` per bank count.
//!
//! The baseline is config-aware: the `config` block captures the
//! *workload identity* (space, endurance, seed, request stream, queue
//! and buffer shape — not perf knobs like pinning), and a prior baseline
//! is preserved only when the identity matches; a widened `WLR_BANKS`
//! sweep keeps existing rows' baselines and self-baselines the new rows.
//!
//! Knobs (see EXPERIMENTS.md): `WLR_BANKS` (comma-separated bank counts,
//! default `1,2,4,8,16,32,64,128`), `WLR_QUEUE_DEPTH` (default 64),
//! `WLR_INTERLEAVE` (`cacheline`, `page`, or a block count; default
//! cacheline), `WLR_WRITE_BUFFER` (DRAM buffer lines, default 32),
//! `WLR_SERVICE_REQUESTS` (requests per configuration, default 2 000 000),
//! `WLR_SERVICE_PASSES` (timing passes per configuration, fastest kept,
//! default 3 — the run is deterministic, so passes differ only in noise),
//! `WLR_PINNED` (pinned-worker pipeline, default 1), `WLR_STEERING`
//! (wear-aware bank steering, default 0), `WLR_RING_DEPTH` (SPSC ring
//! entries per bank, default 4096), plus the usual `WLR_SEED`,
//! `WLR_BENCH_OUT`, `WLR_BENCH_RESET`.

use std::fmt::Write as _;
use std::time::Instant;
use wlr_base::Interleave;
use wlr_bench::report::{
    baseline_field, bench_out_path, env_u64, load_baseline_with_config, write_report,
};
use wlr_bench::{exp_seed, scaled_gap_interval, EXP_BLOCKS, EXP_ENDURANCE};
use wlr_mc::{McFrontend, McOutcome, McStopReason};
use wlr_trace::UniformWorkload;

fn bank_counts() -> Vec<usize> {
    let raw = std::env::var("WLR_BANKS").unwrap_or_else(|_| "1,2,4,8,16,32,64,128".into());
    let counts: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    assert!(!counts.is_empty(), "WLR_BANKS `{raw}` has no valid counts");
    counts
}

fn interleave() -> Interleave {
    match std::env::var("WLR_INTERLEAVE") {
        Ok(s) => Interleave::parse(&s)
            .unwrap_or_else(|| panic!("WLR_INTERLEAVE `{s}` is not cacheline/page/<blocks>")),
        Err(_) => Interleave::CacheLine,
    }
}

#[derive(Debug)]
struct Row {
    banks: usize,
    outcome: McOutcome,
    seconds: f64,
    wps: f64,
}

fn measure(requests: u64, queue_depth: usize, wbuf: usize, stripe: Interleave) -> Vec<Row> {
    let seed = exp_seed();
    let pinned = env_u64("WLR_PINNED", 1) != 0;
    let steering = env_u64("WLR_STEERING", 0) != 0;
    let ring_depth = env_u64("WLR_RING_DEPTH", 4096).max(1) as usize;
    let passes = env_u64("WLR_SERVICE_PASSES", 3).max(1);
    bank_counts()
        .into_iter()
        .map(|banks| {
            let local = EXP_BLOCKS / banks as u64;
            // The run is deterministic, so repeated passes differ only in
            // wall-clock; keep the fastest to strip scheduler noise.
            let mut best: Option<Row> = None;
            for _ in 0..passes {
                let mut mc = McFrontend::builder()
                    .banks(banks)
                    .total_blocks(EXP_BLOCKS)
                    .endurance_mean(EXP_ENDURANCE)
                    .gap_interval(scaled_gap_interval(local, EXP_ENDURANCE))
                    .seed(seed)
                    .interleave(stripe)
                    .queue_depth(queue_depth)
                    .write_buffer_lines(wbuf)
                    .pinned(pinned)
                    .steering(steering)
                    .ring_depth(ring_depth)
                    .build()
                    .expect("bank count must divide the experiment space");
                let mut workload = UniformWorkload::new(EXP_BLOCKS, seed);
                let start = Instant::now();
                let outcome = mc.run(&mut workload, requests);
                let seconds = start.elapsed().as_secs_f64();
                let wps = outcome.requests as f64 / seconds;
                if let Some(b) = &best {
                    assert_eq!(
                        (b.outcome.issued, b.outcome.coalesced, b.outcome.ticks),
                        (outcome.issued, outcome.coalesced, outcome.ticks),
                        "sweep passes diverged at banks={banks}: the run must be deterministic"
                    );
                }
                if best.as_ref().is_none_or(|b| seconds < b.seconds) {
                    best = Some(Row {
                        banks,
                        outcome,
                        seconds,
                        wps,
                    });
                }
            }
            let r = best.expect("at least one pass runs");
            let outcome = &r.outcome;
            eprintln!(
                "  banks={banks:<3} {:>10} requests in {:>6.2}s = {:>12.0} writes/s  \
                 p50={} p99={} ticks  ({} coalesced, {} absorbed)",
                outcome.requests,
                r.seconds,
                r.wps,
                outcome.latency.p50(),
                outcome.latency.p99(),
                outcome.coalesced,
                outcome.absorbed
            );
            let rv = &outcome.revival;
            if rv.links + rv.spare_grants + rv.fake_reports > 0 {
                eprintln!(
                    "            revival: {} links, {} switches, {} spare grants, \
                     {} suspensions, {} sacrificed writes",
                    rv.links, rv.switches, rv.spare_grants, rv.suspensions, rv.fake_reports
                );
            }
            r
        })
        .collect()
}

fn rows_json(rows: &[Row]) -> String {
    let mut s = String::from("{");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let o = &r.outcome;
        write!(
            s,
            "\"banks_{}\": {{\"requests\": {}, \"issued\": {}, \"absorbed\": {}, \
             \"coalesced\": {}, \"drains\": {}, \"seconds\": {:.3}, \
             \"writes_per_sec\": {:.0}, \"p50_ticks\": {}, \"p99_ticks\": {}, \
             \"revival\": {{\"links\": {}, \"switches\": {}, \"spare_grants\": {}, \
             \"suspensions\": {}}}}}",
            r.banks,
            o.requests,
            o.issued,
            o.absorbed,
            o.coalesced,
            o.drains,
            r.seconds,
            r.wps,
            o.latency.p50(),
            o.latency.p99(),
            o.revival.links,
            o.revival.switches,
            o.revival.spare_grants,
            o.revival.suspensions
        )
        .expect("string write");
    }
    s.push('}');
    s
}

fn main() {
    let out_path = bench_out_path("BENCH_service.json");
    let requests = env_u64("WLR_SERVICE_REQUESTS", 2_000_000).max(1);
    let queue_depth = env_u64("WLR_QUEUE_DEPTH", 64).max(1) as usize;
    let wbuf = env_u64("WLR_WRITE_BUFFER", 32) as usize;
    let stripe = interleave();

    eprintln!(
        "service: {EXP_BLOCKS} blocks, endurance {EXP_ENDURANCE:.0}, seed {}, \
         {requests} requests, queue depth {queue_depth}, buffer {wbuf} lines, \
         interleave {stripe}, pinned={} steering={}",
        exp_seed(),
        env_u64("WLR_PINNED", 1) != 0,
        env_u64("WLR_STEERING", 0) != 0
    );
    let rows = measure(requests, queue_depth, wbuf, stripe);

    let mut failures = 0u64;
    for r in &rows {
        if r.outcome.stop != McStopReason::TraceComplete {
            eprintln!(
                "FAIL: banks={} stopped early: {:?}",
                r.banks, r.outcome.stop
            );
            failures += 1;
        }
        if !r.outcome.conserves_writes() {
            eprintln!("FAIL: banks={} dropped requests on the floor", r.banks);
            failures += 1;
        }
    }

    let config = format!(
        "{{\"blocks\": {EXP_BLOCKS}, \"endurance\": {EXP_ENDURANCE}, \
         \"seed\": {}, \"requests\": {requests}, \"queue_depth\": {queue_depth}, \
         \"write_buffer\": {wbuf}, \"interleave\": \"{stripe}\"}}",
        exp_seed()
    );
    let current = rows_json(&rows);
    let base = load_baseline_with_config(&out_path, &current, &config);
    let mut speedups = String::from("{");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            speedups.push_str(", ");
        }
        let name = format!("banks_{}", r.banks);
        let ratio = baseline_field(&base.block, &name, "writes_per_sec").map_or(1.0, |b| r.wps / b);
        write!(speedups, "\"{name}\": {ratio:.2}").expect("string write");
    }
    speedups.push('}');

    let report = format!(
        "{{\n  \"config\": {config},\n  \"baseline\": {},\n  \
         \"current\": {current},\n  \"speedup_vs_baseline\": {speedups}\n}}\n",
        base.block
    );
    write_report(&out_path, &report, base.is_first);
    println!("{report}");
    if failures > 0 {
        eprintln!("FAIL: {failures} configuration(s) did not sustain the request stream");
        std::process::exit(1);
    }
}
