//! `service` — multi-bank front-end service benchmark, tracked over time.
//!
//! Sweeps the bank count (1 → 128 by default) over the same global
//! address space and request stream, and reports sustained service
//! throughput (wall-clock writes per second) plus queueing-latency
//! percentiles (p50/p99/p999) per configuration. Each row carries a
//! typed `outcome` (`complete`, or a `degraded:` variant for an early
//! stop or lost writes) — degraded rows are reported as data, and only
//! fail the run under `WLR_SERVICE_STRICT=1` (which CI sets).
//! The report also carries an `overhead` row:
//! the largest configuration re-run with the serve daemon's full
//! observability stack (per-bank [`MetricsSink`]s plus sampled span
//! timing at the daemon's default period) against the bare run, as a
//! tracked regression budget for the metrics layer.
//! Results go to `BENCH_service.json` with the same baseline discipline
//! as `bench_core`:
//!
//! * first run (no file): records the numbers as both `baseline` and
//!   `current`;
//! * later runs: preserves the existing `baseline` verbatim, replaces
//!   `current`, and reports `speedup_vs_baseline` per bank count.
//!
//! The baseline is config-aware: the `config` block captures the
//! *workload identity* (space, endurance, seed, request stream, queue
//! and buffer shape — not perf knobs like pinning), and a prior baseline
//! is preserved only when the identity matches; a widened `WLR_BANKS`
//! sweep keeps existing rows' baselines and self-baselines the new rows.
//!
//! Knobs (see EXPERIMENTS.md): `WLR_BANKS` (comma-separated bank counts,
//! default `1,2,4,8,16,32,64,128`), `WLR_QUEUE_DEPTH` (default 64),
//! `WLR_INTERLEAVE` (`cacheline`, `page`, or a block count; default
//! cacheline), `WLR_WRITE_BUFFER` (DRAM buffer lines, default 32),
//! `WLR_SERVICE_REQUESTS` (requests per configuration, default 2 000 000),
//! `WLR_SERVICE_PASSES` (timing passes per configuration, fastest kept,
//! default 3 — the run is deterministic, so passes differ only in noise),
//! `WLR_PINNED` (pinned-worker pipeline, default 1), `WLR_STEERING`
//! (wear-aware bank steering, default 0), `WLR_RING_DEPTH` (SPSC ring
//! entries per bank, default 4096), plus the usual `WLR_SEED`,
//! `WLR_BENCH_OUT`, `WLR_BENCH_RESET`.

use std::fmt::Write as _;
use std::time::Instant;
use wl_reviver::{MetricsSink, RevivalMetrics};
use wlr_base::stats::registry::MetricsRegistry;
use wlr_base::Interleave;
use wlr_bench::report::{
    baseline_field, bench_out_path, env_u64, load_baseline_with_config, write_report,
};
use wlr_bench::{exp_seed, scaled_gap_interval, EXP_BLOCKS, EXP_ENDURANCE};
use wlr_mc::{McFrontend, McOutcome, McStopReason};
use wlr_trace::UniformWorkload;

fn bank_counts() -> Vec<usize> {
    let raw = std::env::var("WLR_BANKS").unwrap_or_else(|_| "1,2,4,8,16,32,64,128".into());
    let counts: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    assert!(!counts.is_empty(), "WLR_BANKS `{raw}` has no valid counts");
    counts
}

fn interleave() -> Interleave {
    match std::env::var("WLR_INTERLEAVE") {
        Ok(s) => Interleave::parse(&s)
            .unwrap_or_else(|| panic!("WLR_INTERLEAVE `{s}` is not cacheline/page/<blocks>")),
        Err(_) => Interleave::CacheLine,
    }
}

#[derive(Debug)]
struct Row {
    banks: usize,
    outcome: McOutcome,
    seconds: f64,
    wps: f64,
}

fn measure(requests: u64, queue_depth: usize, wbuf: usize, stripe: Interleave) -> Vec<Row> {
    let seed = exp_seed();
    let pinned = env_u64("WLR_PINNED", 1) != 0;
    let steering = env_u64("WLR_STEERING", 0) != 0;
    let ring_depth = env_u64("WLR_RING_DEPTH", 4096).max(1) as usize;
    let passes = env_u64("WLR_SERVICE_PASSES", 3).max(1);
    bank_counts()
        .into_iter()
        .map(|banks| {
            let local = EXP_BLOCKS / banks as u64;
            // The run is deterministic, so repeated passes differ only in
            // wall-clock; keep the fastest to strip scheduler noise.
            let mut best: Option<Row> = None;
            for _ in 0..passes {
                let mut mc = McFrontend::builder()
                    .banks(banks)
                    .total_blocks(EXP_BLOCKS)
                    .endurance_mean(EXP_ENDURANCE)
                    .gap_interval(scaled_gap_interval(local, EXP_ENDURANCE))
                    .seed(seed)
                    .interleave(stripe)
                    .queue_depth(queue_depth)
                    .write_buffer_lines(wbuf)
                    .pinned(pinned)
                    .steering(steering)
                    .ring_depth(ring_depth)
                    .build()
                    .expect("bank count must divide the experiment space");
                let mut workload = UniformWorkload::new(EXP_BLOCKS, seed);
                let start = Instant::now();
                let outcome = mc.run(&mut workload, requests);
                let seconds = start.elapsed().as_secs_f64();
                let wps = outcome.requests as f64 / seconds;
                if let Some(b) = &best {
                    assert_eq!(
                        (b.outcome.issued, b.outcome.coalesced, b.outcome.ticks),
                        (outcome.issued, outcome.coalesced, outcome.ticks),
                        "sweep passes diverged at banks={banks}: the run must be deterministic"
                    );
                }
                if best.as_ref().is_none_or(|b| seconds < b.seconds) {
                    best = Some(Row {
                        banks,
                        outcome,
                        seconds,
                        wps,
                    });
                }
            }
            let r = best.expect("at least one pass runs");
            let outcome = &r.outcome;
            eprintln!(
                "  banks={banks:<3} {:>10} requests in {:>6.2}s = {:>12.0} writes/s  \
                 p50={} p99={} p999={} ticks  ({} coalesced, {} absorbed)",
                outcome.requests,
                r.seconds,
                r.wps,
                outcome.latency.p50(),
                outcome.latency.p99(),
                outcome.latency.p999(),
                outcome.coalesced,
                outcome.absorbed
            );
            let rv = &outcome.revival;
            if rv.links + rv.spare_grants + rv.fake_reports > 0 {
                eprintln!(
                    "            revival: {} links, {} switches, {} spare grants, \
                     {} suspensions, {} sacrificed writes",
                    rv.links, rv.switches, rv.spare_grants, rv.suspensions, rv.fake_reports
                );
            }
            r
        })
        .collect()
}

/// Measures what the live observability layer costs at `banks` banks:
/// the identical deterministic run with the full serve-daemon
/// instrumentation (a registered [`MetricsSink`] per bank folding events
/// into registry counters, plus wall-clock span sampling at the
/// daemon's default 1-in-N period into a registry histogram) versus
/// bare. Returns median-estimated CPU-time writes/s for (off, on); the
/// outcomes are asserted identical, so the delta is pure
/// instrumentation cost.
/// Nanoseconds this thread has spent on-CPU, from
/// `/proc/self/schedstat` (first field). `None` off Linux — callers
/// fall back to wall clock.
///
/// The overhead probe measures on CPU time, not wall time: on a shared
/// host the scheduler steals slices at coarse granularity, putting
/// ±15% run-to-run noise on wall-clock throughput of *identical* work —
/// an order of magnitude above the few-percent effect the probe exists
/// to resolve. `schedstat` excludes both steal and runqueue wait at
/// nanosecond resolution (`/proc/self/stat` would cover all threads but
/// only at 10ms ticks, which quantises sub-second runs into uselessness)
/// — the trade-off being that it covers the *calling thread* only, so
/// the probe forces the pipeline inline (which `wlr-mc` proves is
/// bit-identical to the threaded drain).
fn cpu_seconds() -> Option<f64> {
    let s = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    let ns: f64 = s.split_whitespace().next()?.parse().ok()?;
    Some(ns / 1e9)
}

fn overhead_probe(
    banks: usize,
    requests: u64,
    queue_depth: usize,
    wbuf: usize,
    stripe: Interleave,
) -> (f64, f64) {
    let seed = exp_seed();
    let pinned = env_u64("WLR_PINNED", 1) != 0;
    let steering = env_u64("WLR_STEERING", 0) != 0;
    let ring_depth = env_u64("WLR_RING_DEPTH", 4096).max(1) as usize;
    let passes = env_u64("WLR_SERVICE_PASSES", 3).max(1);
    let local = EXP_BLOCKS / banks as u64;
    // Longer runs than the sweep: the probe reports a *ratio*, and the
    // longer the run the less measurement noise dilutes the few-percent
    // effect it resolves.
    let requests = requests.max(8_000_000);
    let run_one = |instrumented: bool| -> (f64, McOutcome) {
        let mut mc = McFrontend::builder()
            .banks(banks)
            .total_blocks(EXP_BLOCKS)
            .endurance_mean(EXP_ENDURANCE)
            .gap_interval(scaled_gap_interval(local, EXP_ENDURANCE))
            .seed(seed)
            .interleave(stripe)
            .queue_depth(queue_depth)
            .write_buffer_lines(wbuf)
            .pinned(pinned)
            .steering(steering)
            .ring_depth(ring_depth)
            // Inline drain: keeps the run on the probe's own thread so
            // `cpu_seconds` covers all the work (bit-identical to the
            // threaded drain per wlr-mc's equivalence test).
            .parallel(false)
            // Mirror the serve daemon's default sampling period so the
            // overhead row certifies the configuration users actually run.
            .span_sample(if instrumented {
                env_u64("WLR_METRICS_SAMPLE", 1024).max(1)
            } else {
                0
            })
            .build()
            .expect("bank count must divide the experiment space");
        if instrumented {
            let registry = MetricsRegistry::new();
            mc.set_span_histogram(
                registry.histogram("wlr_span_ns", "enqueue-to-service wall-clock"),
            );
            let revival = RevivalMetrics::register(&registry);
            for b in 0..banks {
                if let Some(r) = mc.bank_sim_mut(b).controller_mut().as_reviver_mut() {
                    r.add_sink(Box::new(MetricsSink::new(revival.clone())));
                }
            }
        }
        let mut workload = UniformWorkload::new(EXP_BLOCKS, seed);
        let cpu0 = cpu_seconds();
        let start = Instant::now();
        let outcome = mc.run(&mut workload, requests);
        let wall = start.elapsed().as_secs_f64();
        let seconds = match (cpu0, cpu_seconds()) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => wall,
        };
        let wps = outcome.requests as f64 / seconds;
        (wps, outcome)
    };
    // Measurement discipline: runs are timed on CPU seconds (see
    // `cpu_seconds`), which removes scheduler-steal noise. Early runs
    // still measure slower than steady state (cold caches, lazy page
    // faults, frequency governor ramp-up — CPU *time* is not frequency-
    // immune), so warm up until throughput plateaus, then alternate
    // off/on passes with the pair order swapped each round so neither
    // mode systematically runs earlier. Median-of-N per mode strips
    // what noise remains; unlike fastest-of, the median is immune to
    // the occasional turbo spike that lands on one mode and inflates
    // the ratio by double digits.
    let mut prev = run_one(false).0;
    for _ in 0..10 {
        let cur = run_one(false).0;
        if (cur - prev).abs() / prev < 0.02 {
            break;
        }
        prev = cur;
    }
    let mut off_runs: Vec<f64> = Vec::new();
    let mut ratios: Vec<f64> = Vec::new();
    let mut off_out: Option<McOutcome> = None;
    let mut on_out: Option<McOutcome> = None;
    // The probe needs more rounds than the sweep: run-to-run variance on
    // a shared host dwarfs the true instrumentation cost it resolves.
    // Each round yields one *paired* on/off ratio — the two runs are
    // adjacent in time, so slow environmental drift (frequency wander)
    // cancels inside the pair instead of landing on one mode.
    for pass in 0..passes.max(16) {
        let mut pair = [0.0f64; 2];
        for mode in [pass % 2 == 0, pass % 2 != 0] {
            let (wps, out) = run_one(mode);
            pair[mode as usize] = wps;
            if mode {
                on_out.get_or_insert(out);
            } else {
                off_runs.push(wps);
                off_out.get_or_insert(out);
            }
        }
        ratios.push(pair[1] / pair[0]);
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    // Report a self-consistent (off, on) pair: the median unperturbed
    // rate and that rate scaled by the median paired ratio.
    let off = median(&mut off_runs);
    let on = off * median(&mut ratios);
    let (off_out, on_out) = (off_out.expect("runs"), on_out.expect("runs"));
    assert_eq!(
        (off_out.issued, off_out.coalesced, off_out.ticks),
        (on_out.issued, on_out.coalesced, on_out.ticks),
        "instrumentation must not change outcomes at banks={banks}"
    );
    (off, on)
}

/// The typed per-row service outcome: `"complete"` for a fully sustained
/// stream, a `degraded:` variant otherwise. Degraded rows stay in the
/// report as data — a service that lost a bank mid-sweep is a measured
/// state, not a discarded run — unless `WLR_SERVICE_STRICT=1` restores
/// the hard failure.
fn outcome_label(o: &McOutcome) -> String {
    if !o.conserves_writes() {
        "degraded:lost_writes".into()
    } else {
        match o.stop {
            McStopReason::TraceComplete => "complete".into(),
            McStopReason::BankDead(b) => format!("degraded:bank_dead:{b}"),
            McStopReason::QuorumDead(n) => format!("degraded:quorum_dead:{n}"),
        }
    }
}

fn rows_json(rows: &[Row]) -> String {
    let mut s = String::from("{");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let o = &r.outcome;
        write!(
            s,
            "\"banks_{}\": {{\"outcome\": \"{}\", \"requests\": {}, \"issued\": {}, \
             \"absorbed\": {}, \
             \"coalesced\": {}, \"drains\": {}, \"seconds\": {:.3}, \
             \"writes_per_sec\": {:.0}, \"p50_ticks\": {}, \"p99_ticks\": {}, \
             \"p999_ticks\": {}, \
             \"revival\": {{\"links\": {}, \"switches\": {}, \"spare_grants\": {}, \
             \"suspensions\": {}}}}}",
            r.banks,
            outcome_label(o),
            o.requests,
            o.issued,
            o.absorbed,
            o.coalesced,
            o.drains,
            r.seconds,
            r.wps,
            o.latency.p50(),
            o.latency.p99(),
            o.latency.p999(),
            o.revival.links,
            o.revival.switches,
            o.revival.spare_grants,
            o.revival.suspensions
        )
        .expect("string write");
    }
    s.push('}');
    s
}

fn main() {
    let out_path = bench_out_path("BENCH_service.json");
    let requests = env_u64("WLR_SERVICE_REQUESTS", 2_000_000).max(1);
    let queue_depth = env_u64("WLR_QUEUE_DEPTH", 64).max(1) as usize;
    let wbuf = env_u64("WLR_WRITE_BUFFER", 32) as usize;
    let stripe = interleave();

    eprintln!(
        "service: {EXP_BLOCKS} blocks, endurance {EXP_ENDURANCE:.0}, seed {}, \
         {requests} requests, queue depth {queue_depth}, buffer {wbuf} lines, \
         interleave {stripe}, pinned={} steering={}",
        exp_seed(),
        env_u64("WLR_PINNED", 1) != 0,
        env_u64("WLR_STEERING", 0) != 0
    );
    let rows = measure(requests, queue_depth, wbuf, stripe);

    let mut degraded = 0u64;
    for r in &rows {
        let label = outcome_label(&r.outcome);
        if label != "complete" {
            eprintln!(
                "WARN: banks={} finished {label} (stop {:?})",
                r.banks, r.outcome.stop
            );
            degraded += 1;
        }
    }

    let config = format!(
        "{{\"blocks\": {EXP_BLOCKS}, \"endurance\": {EXP_ENDURANCE}, \
         \"seed\": {}, \"requests\": {requests}, \"queue_depth\": {queue_depth}, \
         \"write_buffer\": {wbuf}, \"interleave\": \"{stripe}\"}}",
        exp_seed()
    );
    let current = rows_json(&rows);
    let base = load_baseline_with_config(&out_path, &current, &config);
    let mut speedups = String::from("{");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            speedups.push_str(", ");
        }
        let name = format!("banks_{}", r.banks);
        let ratio = baseline_field(&base.block, &name, "writes_per_sec").map_or(1.0, |b| r.wps / b);
        write!(speedups, "\"{name}\": {ratio:.2}").expect("string write");
    }
    speedups.push('}');

    // What does the serve daemon's observability layer cost? Re-run the
    // largest configuration with the full instrumentation stack on.
    // The tracked budget configuration is 64 banks (falling back to the
    // largest swept count when the sweep was narrowed below it).
    let probe_banks = rows
        .iter()
        .map(|r| r.banks)
        .find(|&b| b == 64)
        .unwrap_or_else(|| rows.iter().map(|r| r.banks).max().expect("rows"));
    let (wps_off, wps_on) = overhead_probe(probe_banks, requests, queue_depth, wbuf, stripe);
    let regression_pct = (wps_off - wps_on) / wps_off * 100.0;
    eprintln!(
        "  overhead: banks={probe_banks} metrics-off {wps_off:.0} writes/s, \
         metrics-on {wps_on:.0} writes/s ({regression_pct:+.2}%)"
    );
    if regression_pct >= 3.0 {
        eprintln!("WARN: metrics layer costs >=3% writes/s at banks={probe_banks}");
    }
    let overhead = format!(
        "{{\"banks\": {probe_banks}, \"writes_per_sec_off\": {wps_off:.0}, \
         \"writes_per_sec_on\": {wps_on:.0}, \"regression_pct\": {regression_pct:.2}}}"
    );

    let report = format!(
        "{{\n  \"config\": {config},\n  \"baseline\": {},\n  \
         \"current\": {current},\n  \"overhead\": {overhead},\n  \
         \"speedup_vs_baseline\": {speedups}\n}}\n",
        base.block
    );
    write_report(&out_path, &report, base.is_first);
    println!("{report}");
    if degraded > 0 {
        eprintln!(
            "NOTE: {degraded} configuration(s) finished degraded; rows carry the typed outcome"
        );
        if env_u64("WLR_SERVICE_STRICT", 0) != 0 {
            eprintln!("FAIL: WLR_SERVICE_STRICT=1 and the stream was not fully sustained");
            std::process::exit(1);
        }
    }
}
