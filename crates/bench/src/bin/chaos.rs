//! `chaos` — fault-storm harness for degraded-mode survival, tracked
//! over time.
//!
//! Drives the degraded-mode multi-bank front-end through a storm of
//! runtime-injected faults — mid-drain power losses, torn-metadata crash
//! points, uncorrectable transient-read bursts, bank kills — plus full
//! capture/restore reboot cycles, and asserts the service survives all
//! of it with **zero** data-integrity violations:
//!
//! * every storm window must run its request stream to completion
//!   (`TraceComplete`) and conserve writes — nothing dropped, everything
//!   redirected through the quarantine directory;
//! * after each reboot the restored quarantine image must be identical
//!   and every directory line must read back with its recorded tag;
//! * the per-bank integrity oracles must report zero violations at the
//!   end of every generation.
//!
//! The run records what the paper's availability story needs measured:
//! degraded throughput at N−1 and N−2 relative to nominal, and the
//! recovery time (MTTR) of the parallel per-bank restore. Results land
//! in `BENCH_robustness.json` under `chaos_*` keys, preserving the
//! `robustness` binary's blocks verbatim (and vice versa), with the
//! usual baseline discipline: first run records `chaos_baseline`,
//! later runs replace only `chaos_current`.
//!
//! Knobs: `WLR_CHAOS_SEED` (default 99), `WLR_CHAOS_WINDOW` (requests
//! per storm window, default 150 000), `WLR_CHAOS_CYCLES` (reboot
//! cycles, default 3), plus `WLR_BENCH_OUT` / `WLR_BENCH_RESET`.

use std::fmt::Write as _;
use std::time::Instant;

use wl_reviver::sim::EccKind;
use wl_reviver::PersistedMeta;
use wlr_base::pool::{run_pooled, PooledJob};
use wlr_base::PageId;
use wlr_bench::report::{bench_out_path, bench_reset, env_u64, extract_object, write_report};
use wlr_mc::{
    BankChaos, CrashPoint, FaultPlan, McFrontend, McOutcome, McStopPolicy, McStopReason,
    QuarantineImage,
};
use wlr_trace::UniformWorkload;

const BANKS: usize = 8;
const BLOCKS: u64 = 1 << 12;

fn build(seed: u64) -> McFrontend {
    McFrontend::builder()
        .banks(BANKS)
        .total_blocks(BLOCKS)
        // No natural wear deaths: every fault in this harness is
        // injected, so the observed counts are the injected counts.
        .endurance_mean(1e9)
        // Zero-entry ECP makes every injected transient uncorrectable —
        // the retry path sees exactly the bursts we arm.
        .ecc(EccKind::Ecp(0))
        .verify_integrity(true)
        .degraded(true)
        .stop_policy(McStopPolicy::Quorum(1.0))
        .seed(seed)
        .build()
        .expect("chaos geometry")
}

/// One measured traffic window; the stream must complete.
fn window(mc: &mut McFrontend, w: &mut UniformWorkload, n: u64) -> (McOutcome, f64) {
    let t = Instant::now();
    let out = mc.run(w, n);
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(
        out.stop,
        McStopReason::TraceComplete,
        "a chaos window must keep serving"
    );
    assert!(out.conserves_writes(), "writes conserved: {out:?}");
    assert_eq!(out.dropped, 0, "degraded mode never drops writes");
    (out, secs)
}

/// Arms a storm round on every live bank: two mid-drain power losses
/// plus a torn-metadata window at the next wear-leveling switch.
fn arm_storm(mc: &McFrontend, round: u64) {
    for b in 0..mc.num_banks() {
        if !mc.banks()[b].alive() {
            continue;
        }
        let plan = FaultPlan::new()
            .power_loss_at_write(500 + 37 * b as u64 + 11 * round)
            .power_loss_at_write(1_800 + 41 * b as u64 + 13 * round)
            .power_loss_at_write(3_500 + 53 * b as u64 + 17 * round)
            .power_loss_at_point(CrashPoint::MidSwitch, 1 + (b as u64 % 3))
            .power_loss_at_point(CrashPoint::MidSwitch, 5 + (b as u64 % 3));
        mc.inject_chaos(b, BankChaos::Faults(plan));
    }
}

/// Everything the §III-B durable-state story says survives a reboot.
struct BankSnap {
    wear: Vec<u32>,
    retirements: Vec<u64>,
    meta: Vec<u8>,
}

fn capture(mc: &mut McFrontend) -> (Vec<BankSnap>, Option<QuarantineImage>) {
    let snaps = (0..mc.num_banks())
        .map(|b| {
            let sim = mc.bank_sim_mut(b);
            BankSnap {
                wear: sim.controller().device().wear_snapshot(),
                retirements: sim
                    .os()
                    .retirement_log()
                    .iter()
                    .map(|p| p.index())
                    .collect(),
                meta: sim
                    .controller()
                    .as_reviver()
                    .expect("chaos harness runs a reviver scheme")
                    .persisted_meta()
                    .to_bytes(),
            }
        })
        .collect();
    (snaps, mc.quarantine_image())
}

/// A daemon reboot: fresh front-end, parallel per-bank recovery scans,
/// quarantine re-applied. Returns the revived front-end and the
/// wall-clock recovery time in milliseconds — the MTTR sample.
fn reboot(seed: u64, snaps: &[BankSnap], qimg: &Option<QuarantineImage>) -> (McFrontend, f64) {
    let mut fresh = build(seed);
    let t = Instant::now();
    let jobs: Vec<PooledJob<()>> = fresh
        .banks_mut()
        .iter_mut()
        .zip(snaps)
        .map(|(bank, s)| {
            Box::new(move || {
                let sim = bank.sim_mut();
                sim.controller_mut()
                    .device_mut()
                    .restore_wear_image(&s.wear);
                for &p in &s.retirements {
                    sim.os_mut().retire_page(PageId::new(p));
                }
                let meta = PersistedMeta::from_bytes(&s.meta).expect("captured meta parses");
                sim.controller_mut()
                    .as_reviver_mut()
                    .expect("chaos harness runs a reviver scheme")
                    .restore_from(meta);
            }) as PooledJob<()>
        })
        .collect();
    run_pooled(jobs);
    if let Some(q) = qimg {
        fresh.restore_quarantine(q);
    }
    let ms = t.elapsed().as_secs_f64() * 1000.0;
    (fresh, ms)
}

/// Directory read-back: every line the quarantine rescued or redirected
/// must return its recorded tag. Returns the number of mismatches.
fn verify_directory(mc: &mut McFrontend) -> u64 {
    let Some(img) = mc.quarantine_image() else {
        return 0;
    };
    img.directory
        .iter()
        .filter(|&&(global, tag)| mc.read(global) != Ok(Some(tag)))
        .count() as u64
}

/// Per-bank oracle sweep over the live banks. Returns violations.
fn verify_banks(mc: &mut McFrontend) -> u64 {
    let mut violations = 0;
    for b in 0..mc.num_banks() {
        if mc.banks()[b].alive() {
            violations += mc.bank_sim_mut(b).verify_all();
        }
    }
    violations
}

fn main() {
    let out_path = bench_out_path("BENCH_robustness.json");
    let seed = env_u64("WLR_CHAOS_SEED", 99);
    let win = env_u64("WLR_CHAOS_WINDOW", 150_000).max(10_000);
    let cycles = env_u64("WLR_CHAOS_CYCLES", 3).max(1);

    eprintln!(
        "chaos: {BANKS} banks, {BLOCKS} blocks, seed {seed}, \
         {win}-request windows, {cycles} reboot cycles"
    );

    let mut mc = build(seed);
    let mut w = UniformWorkload::new(BLOCKS, seed);
    // Observed fault tallies from completed generations (reboots reset
    // the per-bank counters, so finished generations accumulate here).
    let mut prior_recoveries = 0u64;
    let mut prior_retries = 0u64;
    let mut prior_redirected = 0u64;
    let mut prior_migrated = 0u64;
    let mut violations = 0u64;
    let mut kills = 0u64;

    // Nominal window: no faults armed, the throughput yardstick.
    let (out, secs) = window(&mut mc, &mut w, win);
    let wps_nominal = win as f64 / secs;
    eprintln!(
        "  nominal   : {wps_nominal:>12.0} writes/s ({} banks)",
        BANKS
    );
    assert_eq!(out.quarantines, 0, "nominal window is fault-free");

    // Storm rounds at full width: power losses and torn-metadata crash
    // points on every bank, recovered in place mid-drain.
    for round in 0..4 {
        arm_storm(&mc, round);
        window(&mut mc, &mut w, win);
    }

    // Kill a bank mid-window, then measure a clean N−1 window.
    mc.inject_chaos(2, BankChaos::KillAfter(1_000));
    kills += 1;
    let (out, _) = window(&mut mc, &mut w, win);
    assert_eq!(out.quarantines, 1, "first kill quarantines: {out:?}");
    let (_, secs) = window(&mut mc, &mut w, win);
    let wps_n1 = win as f64 / secs;
    eprintln!(
        "  degraded-1: {wps_n1:>12.0} writes/s ({} banks)",
        BANKS - 1
    );

    // More storms on the survivors, then a second kill → N−2.
    for round in 4..8 {
        arm_storm(&mc, round);
        window(&mut mc, &mut w, win);
    }
    mc.inject_chaos(5, BankChaos::KillAfter(1_000));
    kills += 1;
    let (out, _) = window(&mut mc, &mut w, win);
    assert_eq!(out.quarantines, 2, "second kill quarantines: {out:?}");
    let (_, secs) = window(&mut mc, &mut w, win);
    let wps_n2 = win as f64 / secs;
    eprintln!(
        "  degraded-2: {wps_n2:>12.0} writes/s ({} banks)",
        BANKS - 2
    );

    // Transient-read storm: short uncorrectable bursts on every live
    // bank, absorbed by the bounded retry (bursts stay under the retry
    // budget so no read surfaces an error).
    for round in 0..10 {
        for b in 0..BANKS {
            if !mc.banks()[b].alive() {
                continue;
            }
            let lines = mc.banks()[b].sim().tracked_lines();
            if lines.is_empty() {
                continue;
            }
            let (local, tag) = lines[(round * 7 + b) % lines.len()];
            let global = mc.map().join(b as u64, local);
            mc.arm_bank_faults(b, FaultPlan::new().transient_read_burst(0, 2));
            assert_eq!(
                mc.read(global),
                Ok(Some(tag)),
                "retries absorb the burst on bank {b}"
            );
        }
    }

    violations += verify_banks(&mut mc);
    violations += verify_directory(&mut mc);
    let qimg_before = mc.quarantine_image().expect("two banks quarantined");

    // Reboot cycles: capture → fresh build → timed parallel restore →
    // verify → keep serving. Each cycle is one MTTR sample.
    let mut mttr_ms: Vec<f64> = Vec::new();
    for cycle in 0..cycles {
        let gen_out = mc.finish();
        prior_recoveries += gen_out.banks.iter().map(|b| b.recoveries).sum::<u64>();
        prior_retries += gen_out.read_retries;
        prior_redirected += gen_out.redirected;
        prior_migrated += gen_out.migrated_lines;
        let (snaps, qimg) = capture(&mut mc);
        let (revived, ms) = reboot(seed, &snaps, &qimg);
        mc = revived;
        mttr_ms.push(ms);
        assert_eq!(
            mc.quarantine_image().as_ref(),
            qimg.as_ref(),
            "cycle {cycle}: quarantine survives the reboot"
        );
        violations += verify_directory(&mut mc);
        // The revived service keeps taking traffic at N−2.
        let (out, _) = window(&mut mc, &mut w, win / 4);
        assert_eq!(out.quarantines, 0, "restore does not re-quarantine");
        eprintln!("  reboot {cycle}  : recovered in {ms:>8.1} ms, still serving");
    }
    assert_eq!(
        mc.quarantine_image().expect("still degraded").dead,
        qimg_before.dead,
        "dead set stable across all reboots"
    );

    violations += verify_banks(&mut mc);
    let final_out = mc.finish();
    assert!(final_out.conserves_writes());
    let recoveries = prior_recoveries + final_out.banks.iter().map(|b| b.recoveries).sum::<u64>();
    let transients = prior_retries + final_out.read_retries;
    let redirected = prior_redirected + final_out.redirected;
    let migrated = prior_migrated + final_out.migrated_lines;
    let faults = recoveries + transients + kills;
    let mean_mttr = mttr_ms.iter().sum::<f64>() / mttr_ms.len() as f64;
    let max_mttr = mttr_ms.iter().fold(0.0f64, |a, &b| a.max(b));

    eprintln!(
        "  faults    : {faults} observed ({recoveries} power-loss recoveries, \
         {transients} transient retries, {kills} kills, {cycles} reboots), \
         {violations} integrity violations"
    );

    let current = format!(
        "{{\"nominal\": {{\"banks\": {BANKS}, \"writes_per_sec\": {wps_nominal:.0}}}, \
         \"degraded_n1\": {{\"banks\": {}, \"writes_per_sec\": {wps_n1:.0}, \
         \"throughput_vs_nominal\": {:.3}}}, \
         \"degraded_n2\": {{\"banks\": {}, \"writes_per_sec\": {wps_n2:.0}, \
         \"throughput_vs_nominal\": {:.3}}}, \
         \"recovery\": {{\"cycles\": {cycles}, \"mean_mttr_ms\": {mean_mttr:.2}, \
         \"max_mttr_ms\": {max_mttr:.2}}}, \
         \"faults\": {{\"observed\": {faults}, \"power_loss_recoveries\": {recoveries}, \
         \"transient_retries\": {transients}, \"bank_kills\": {kills}, \
         \"reboots\": {cycles}, \"redirected\": {}, \"migrated_lines\": {}, \
         \"integrity_violations\": {violations}}}}}",
        BANKS - 1,
        wps_n1 / wps_nominal,
        BANKS - 2,
        wps_n2 / wps_nominal,
        redirected,
        migrated,
    );

    // Merge into BENCH_robustness.json, preserving the `robustness`
    // binary's blocks verbatim and our own committed chaos baseline.
    let prior = std::fs::read_to_string(&out_path).ok();
    let keep = |key: &str| prior.as_deref().and_then(|p| extract_object(p, key));
    let chaos_baseline = if bench_reset() {
        None
    } else {
        keep("chaos_baseline")
    };
    let is_first = chaos_baseline.is_none();
    let chaos_baseline = chaos_baseline.unwrap_or_else(|| current.clone());

    let mut report = String::from("{\n");
    for key in ["config", "baseline", "current", "scan_ratio_vs_baseline"] {
        if let Some(block) = keep(key) {
            let _ = writeln!(report, "  \"{key}\": {block},");
        }
    }
    let _ = writeln!(
        report,
        "  \"chaos_config\": {{\"banks\": {BANKS}, \"blocks\": {BLOCKS}, \
         \"seed\": {seed}, \"window\": {win}, \"cycles\": {cycles}}},"
    );
    let _ = writeln!(report, "  \"chaos_baseline\": {chaos_baseline},");
    let _ = writeln!(report, "  \"chaos_current\": {current}");
    report.push_str("}\n");

    write_report(&out_path, &report, is_first);
    println!("{report}");

    if violations > 0 {
        eprintln!("FAIL: {violations} data-integrity violations under chaos");
        std::process::exit(1);
    }
    if faults < 200 {
        eprintln!("FAIL: only {faults} faults observed; the soak must exceed 200");
        std::process::exit(1);
    }
}
