//! `robustness` — recovery-cost benchmark, tracked over time.
//!
//! For each reviver stack, sweeps a set of seeded power-loss points
//! through one lifetime workload and measures what recovery costs at
//! each: PCM blocks scanned, links rebuilt, journaled migration lines
//! replayed, spares recovered, and recovery wall-clock time. Results go
//! to `BENCH_robustness.json` with the same baseline discipline as
//! `bench_core`:
//!
//! * first run (no file): records the numbers as both `baseline` and
//!   `current`;
//! * later runs: preserves the existing `baseline` verbatim, replaces
//!   `current`, and reports `scan_ratio_vs_baseline` per stack.
//!
//! Delete the file (or set `WLR_BENCH_RESET=1`) to re-baseline;
//! `WLR_BENCH_OUT` overrides the output path; `WLR_FAULT_SEED` and
//! `WLR_CRASH_INTERVAL` pick the fault schedule (see EXPERIMENTS.md).

use std::fmt::Write as _;
use std::time::Instant;
use wl_reviver::recovery::RecoveryReport;
use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{Simulation, StopCondition, StopReason};
use wlr_bench::report::{
    baseline_field, bench_out_path, env_u64, extract_object, handle_list_stacks, load_baseline,
    rows_json, write_report,
};
use wlr_pcm::FaultPlan;

const BLOCKS: u64 = 1 << 10;
const ENDURANCE: f64 = 60.0;
const STOP: u64 = 55_000;

#[derive(Debug)]
struct Row {
    name: &'static str,
    crashes: u64,
    report: RecoveryReport,
    recover_seconds: f64,
    violations: u64,
}

fn measure(seed: u64, interval: u64) -> Vec<Row> {
    // With WLR_TRACE_DUMP=1, each simulation carries a bounded ring of
    // reviver events and the tail is dumped at every power-loss point —
    // the last thing the controller did before the lights went out.
    let trace_dump = std::env::var("WLR_TRACE_DUMP").is_ok_and(|v| v == "1");
    SchemeRegistry::global()
        .revivable()
        .map(|spec| {
            let name = spec.title;
            let scheme = spec.kind;
            let mut crashes = 0u64;
            let mut violations = 0u64;
            let mut agg = RecoveryReport::default();
            let mut recover_seconds = 0.0;
            for k in (interval..50_000).step_by(interval as usize) {
                let mut builder = Simulation::builder()
                    .num_blocks(BLOCKS)
                    .endurance_mean(ENDURANCE)
                    .gap_interval(5)
                    .sr_refresh_interval(5)
                    .scheme(scheme)
                    .seed(seed)
                    .sample_interval(10_000)
                    .verify_integrity(true)
                    .fault_plan(FaultPlan::new().power_loss_at_write(k));
                if trace_dump {
                    builder = builder.trace_ring(64);
                }
                let mut sim = builder.build();
                let out = sim.run(StopCondition::Writes(STOP));
                if out.reason != StopReason::PowerLoss {
                    continue;
                }
                crashes += 1;
                if trace_dump {
                    if let Some(dump) = sim.trace_dump() {
                        eprintln!("--- {name}: events before power loss at write {k} ---");
                        eprint!("{dump}");
                    }
                }
                let t = Instant::now();
                let report = sim.recover();
                recover_seconds += t.elapsed().as_secs_f64();
                agg.absorb(&report);
                violations += sim.verify_all();
                sim.run(StopCondition::Writes(STOP));
                violations += sim.verify_all();
            }
            eprintln!(
                "  {name:<32} {crashes:>3} crashes: {:>8} blocks scanned, {:>5} links, \
                 {:>4} replays, {violations} violations",
                agg.blocks_scanned, agg.links_recovered, agg.migration_replays
            );
            Row {
                name,
                crashes,
                report: agg,
                recover_seconds,
                violations,
            }
        })
        .collect()
}

fn stacks_json(rows: &[Row]) -> String {
    let pairs: Vec<(&str, String)> = rows
        .iter()
        .map(|r| {
            let per = |x: u64| x as f64 / r.crashes.max(1) as f64;
            let mut fields = String::new();
            write!(
                fields,
                "\"crashes\": {}, \"blocks_scanned_per_crash\": {:.1}, \
                 \"links_recovered_per_crash\": {:.2}, \"migration_replays_per_crash\": {:.3}, \
                 \"spares_recovered_per_crash\": {:.1}, \"torn_links_dropped\": {}, \
                 \"torn_switch_repairs\": {}, \"healed_links\": {}, \
                 \"recover_seconds_total\": {:.4}, \"violations\": {}",
                r.crashes,
                per(r.report.blocks_scanned),
                per(r.report.links_recovered),
                per(r.report.migration_replays),
                per(r.report.spares_recovered),
                r.report.torn_links_dropped,
                r.report.torn_switch_repairs,
                r.report.healed_links,
                r.recover_seconds,
                r.violations
            )
            .expect("string write");
            (r.name, fields)
        })
        .collect();
    rows_json(&pairs)
}

fn main() {
    handle_list_stacks();
    let out_path = bench_out_path("BENCH_robustness.json");
    let seed = env_u64("WLR_FAULT_SEED", 42);
    let interval = env_u64("WLR_CRASH_INTERVAL", 5_000).max(1);

    eprintln!(
        "robustness: {BLOCKS} blocks, endurance {ENDURANCE:.0}, seed {seed}, \
         crash every {interval} device writes"
    );
    let rows = measure(seed, interval);
    let total_violations: u64 = rows.iter().map(|r| r.violations).sum();
    let current = stacks_json(&rows);

    let base = load_baseline(&out_path, &current);
    let mut ratios = String::from("{");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            ratios.push_str(", ");
        }
        let per = r.report.blocks_scanned as f64 / r.crashes.max(1) as f64;
        let ratio = baseline_field(&base.block, r.name, "blocks_scanned_per_crash")
            .map_or(1.0, |b| if b > 0.0 { per / b } else { 1.0 });
        write!(ratios, "\"{}\": {:.2}", r.name, ratio).expect("string write");
    }
    ratios.push('}');

    // The `chaos` binary shares this report file; carry its blocks
    // through verbatim so the two harnesses can run in either order.
    let prior = std::fs::read_to_string(&out_path).ok();
    let mut chaos_blocks = String::new();
    for key in ["chaos_config", "chaos_baseline", "chaos_current"] {
        if let Some(block) = prior.as_deref().and_then(|p| extract_object(p, key)) {
            write!(chaos_blocks, ",\n  \"{key}\": {block}").expect("string write");
        }
    }

    let report = format!(
        "{{\n  \"config\": {{\"blocks\": {BLOCKS}, \"endurance\": {ENDURANCE}, \
         \"seed\": {seed}, \"crash_interval\": {interval}, \"stop\": \"writes:{STOP}\"}},\n  \
         \"baseline\": {},\n  \"current\": {current},\n  \
         \"scan_ratio_vs_baseline\": {ratios}{chaos_blocks}\n}}\n",
        base.block
    );
    write_report(&out_path, &report, base.is_first);
    println!("{report}");
    if total_violations > 0 {
        eprintln!("FAIL: {total_violations} oracle violations during the sweep");
        std::process::exit(1);
    }
}
