//! Table I — benchmark summary: validates that each synthetic workload
//! reproduces its benchmark's published write CoV, both analytically
//! (weight profile) and empirically (sampled write counts).
//!
//! ```text
//! cargo run --release -p wlr-bench --bin table1
//! ```

use wlr_bench::{exp_seed, print_table, EXP_BLOCKS};
use wlr_trace::{stats::measure_cov, Benchmark, Workload};

fn main() {
    println!("Table I — summary of the benchmarks (synthetic reproduction)\n");
    let mut rows = Vec::new();
    for bench in Benchmark::table1() {
        let mut w = bench.build(EXP_BLOCKS, exp_seed());
        let analytic = w.exact_cov();
        let sampled = measure_cov(&mut w, 8_000_000);
        rows.push(vec![
            bench.name().to_string(),
            bench.description().to_string(),
            bench.suite().to_string(),
            format!("{:.2}", bench.write_cov()),
            format!("{analytic:.2}"),
            format!("{sampled:.2}"),
        ]);
    }
    print_table(
        "write-CoV validation over a 2^14-block space",
        &[
            "Name",
            "Description",
            "Suite",
            "Paper CoV",
            "Profile CoV",
            "Sampled CoV",
        ],
        &rows,
    );
    println!("Profile CoV is the generator's stationary distribution; Sampled CoV");
    println!("is measured from 8M drawn writes (sampling noise shrinks with volume).");
}
