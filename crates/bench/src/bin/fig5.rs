//! Figure 5 — number of writes required to lose 30% of the PCM's space,
//! per benchmark, for `ECP6-SG` (wear leveling crippled by the first
//! failure) vs `ECP6-SG-WLR` (revived). The paper reports WL-Reviver
//! improvements of 36%–325%, larger for higher write CoV.
//!
//! ```text
//! cargo run --release -p wlr-bench --bin fig5
//! ```

use wl_reviver::sim::{SchemeKind, StopCondition};
use wlr_bench::{exp_builder, exp_seed, print_table, run_curve, run_parallel, Curve, EXP_BLOCKS};
use wlr_trace::Benchmark;

/// Replicates per configuration (`WLR_REPLICATES`, default 1); seeds are
/// `exp_seed() + r`.
fn replicates() -> u64 {
    std::env::var("WLR_REPLICATES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

fn job(
    bench: Benchmark,
    scheme: SchemeKind,
    seed: u64,
    label: String,
) -> Box<dyn FnOnce() -> Curve + Send> {
    Box::new(move || {
        let sim = exp_builder()
            .seed(seed)
            .scheme(scheme)
            .workload(bench.build(EXP_BLOCKS, seed))
            .build();
        run_curve(&label, sim, StopCondition::UsableBelow(0.70))
    })
}

fn mean_sd(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let reps = replicates();
    println!(
        "Figure 5 — writes to fail 30% of the PCM's blocks (lifetime; {reps} replicate{})\n",
        if reps == 1 { "" } else { "s" }
    );
    let mut configs = Vec::new();
    for bench in Benchmark::table1() {
        for r in 0..reps {
            let seed = exp_seed() + r;
            for (tag, scheme) in [
                ("ECP6-SG", SchemeKind::StartGapOnly),
                ("ECP6-SG-WLR", SchemeKind::ReviverStartGap),
            ] {
                let label = format!("{bench}/{tag}/s{seed}");
                configs.push((label.clone(), job(bench, scheme, seed, label)));
            }
        }
    }
    let curves = run_parallel(configs);

    let mut rows = Vec::new();
    for (i, bench) in Benchmark::table1().iter().enumerate() {
        let base = i as u64 * reps * 2;
        let sg: Vec<f64> = (0..reps)
            .map(|r| curves[(base + 2 * r) as usize].outcome.writes_issued as f64)
            .collect();
        let wlr: Vec<f64> = (0..reps)
            .map(|r| curves[(base + 2 * r + 1) as usize].outcome.writes_issued as f64)
            .collect();
        let (sg_m, sg_sd) = mean_sd(&sg);
        let (wlr_m, wlr_sd) = mean_sd(&wlr);
        let fmt = |m: f64, sd: f64| {
            if reps == 1 {
                format!("{m:.0}")
            } else {
                format!("{m:.0} ±{sd:.0}")
            }
        };
        rows.push(vec![
            bench.name().to_string(),
            format!("{:.2}", bench.write_cov()),
            fmt(sg_m, sg_sd),
            fmt(wlr_m, wlr_sd),
            format!("+{:.0}%", (wlr_m / sg_m - 1.0) * 100.0),
        ]);
    }
    print_table(
        "lifetime to 30% space loss (scaled chip; see EXPERIMENTS.md)",
        &["benchmark", "CoV", "ECP6-SG", "ECP6-SG-WLR", "WLR gain"],
        &rows,
    );
    println!("Expected shape: SG lifetime falls as CoV rises; WLR lifetime is much");
    println!("larger and far less sensitive to the write distribution (paper §IV-B).");
    println!("Set WLR_REPLICATES=3 for mean ± sd across seeds.");
}
