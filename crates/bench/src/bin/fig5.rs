//! Figure 5 — number of writes required to lose 30% of the PCM's space,
//! per benchmark, for `ECP6-SG` (wear leveling crippled by the first
//! failure) vs `ECP6-SG-WLR` (revived). The paper reports WL-Reviver
//! improvements of 36%–325%, larger for higher write CoV.
//!
//! ```text
//! cargo run --release -p wlr-bench --bin fig5
//! ```

use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{SchemeKind, StopCondition};
use wlr_bench::{
    exp_builder, exp_seed, fork_warmup_for, print_table, replicate_seeds, run_replicated_forked,
    Curve, ForkSweep, EXP_BLOCKS,
};
use wlr_trace::Benchmark;

/// One (benchmark, scheme) configuration as a fork-shared sweep: the
/// warmup to 15% space loss runs once; each replicate seed forks from
/// the snapshot and diverges only its request stream (replicates share
/// the device's endurance draws — see EXPERIMENTS.md).
fn config(bench: Benchmark, scheme: SchemeKind, label: String) -> (String, ForkSweep) {
    let stop = StopCondition::UsableBelow(0.70);
    (
        label,
        ForkSweep {
            build: Box::new(move || {
                exp_builder()
                    .scheme(scheme)
                    .workload(bench.build(EXP_BLOCKS, exp_seed()))
                    .build()
            }),
            warmup: fork_warmup_for(stop),
            stop,
            reseed: Box::new(move |seed| Box::new(bench.build(EXP_BLOCKS, seed))),
        },
    )
}

fn main() {
    let seeds = replicate_seeds();
    let reps = seeds.len();
    println!(
        "Figure 5 — writes to fail 30% of the PCM's blocks (lifetime; {reps} replicate{})\n",
        if reps == 1 { "" } else { "s" }
    );
    let reg = SchemeRegistry::global();
    let mut configs = Vec::new();
    for bench in Benchmark::table1() {
        for (tag, scheme) in [
            ("ECP6-SG", reg.kind("sg")),
            ("ECP6-SG-WLR", reg.kind("reviver-sg")),
        ] {
            configs.push(config(bench, scheme, format!("{bench}/{tag}")));
        }
    }
    let curves = run_replicated_forked(configs, &seeds);

    let writes = |c: &Curve| c.outcome.writes_issued as f64;
    let mut rows = Vec::new();
    for (i, bench) in Benchmark::table1().iter().enumerate() {
        let sg = &curves[2 * i];
        let wlr = &curves[2 * i + 1];
        let (sg_m, _, _) = sg.writes_stats();
        let (wlr_m, _, _) = wlr.writes_stats();
        let fmt = |rep: &wlr_bench::ReplicatedCurve| {
            let (m, _, _) = rep.writes_stats();
            if reps == 1 {
                format!("{m:.0}")
            } else {
                format!("{m:.0} ±{:.0}", rep.stddev(writes))
            }
        };
        rows.push(vec![
            bench.name().to_string(),
            format!("{:.2}", bench.write_cov()),
            fmt(sg),
            fmt(wlr),
            format!("+{:.0}%", (wlr_m / sg_m - 1.0) * 100.0),
        ]);
    }
    print_table(
        "lifetime to 30% space loss (scaled chip; see EXPERIMENTS.md)",
        &["benchmark", "CoV", "ECP6-SG", "ECP6-SG-WLR", "WLR gain"],
        &rows,
    );
    println!("Expected shape: SG lifetime falls as CoV rises; WLR lifetime is much");
    println!("larger and far less sensitive to the write distribution (paper §IV-B).");
    println!("Set WLR_REPLICATES=3 for mean ± sd across seeds.");
}
