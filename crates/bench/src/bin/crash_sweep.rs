//! `crash_sweep` — CrashMonkey-style power-loss sweep over every stack.
//!
//! Replays the same seeded workload once per crash point, cutting power
//! at every Nth device write, recovering, and driving the run to its
//! normal end. After each recovery *and* at the end of each run the
//! integrity oracle re-reads every live logical address; any mismatch is
//! a violation and fails the sweep (exit code 1).
//!
//! Reviver stacks crash at device-write granularity through the seeded
//! [`FaultPlan`]; baseline stacks model fully-persistent metadata and
//! crash at software-write boundaries instead (the paper grants them
//! this), so the same sweep shape covers all nine stacks.
//!
//! Knobs (see EXPERIMENTS.md):
//!
//! * `WLR_FAULT_SEED`   — workload/device seed (default 42)
//! * `WLR_CRASH_INTERVAL` — distance between crash points in device
//!   writes (default 1000)
//! * `WLR_CRASH_FROM` / `WLR_CRASH_TO` — sweep range (default
//!   1000..37000, healthy era through deep wear-out; later points than
//!   a stack's lifetime simply never fire)
//! * `WLR_CRASH_STACKS` — comma-separated registry-name filter (default:
//!   all registered stacks; unknown names abort with the valid list, and
//!   `--list-stacks` prints it)

use wl_reviver::recovery::RecoveryReport;
use wl_reviver::registry::{SchemeRegistry, StackSpec};
use wl_reviver::sim::{SchemeKind, Simulation, StopCondition, StopReason};
use wlr_bench::report::{handle_list_stacks, resolve_stacks_or_exit};
use wlr_bench::{print_table, run_pooled, PooledJob};
use wlr_pcm::FaultPlan;

const BLOCKS: u64 = 1 << 10;
/// Short lifetime so each crash-point replay is cheap; the sweep's value
/// is in the *number* of cut positions, not the length of each run.
const ENDURANCE: f64 = 60.0;
const STOP: u64 = 55_000;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn fault_seed() -> u64 {
    env_u64("WLR_FAULT_SEED", 42)
}

fn all_stacks() -> Vec<&'static StackSpec> {
    match std::env::var("WLR_CRASH_STACKS") {
        Ok(filter) => resolve_stacks_or_exit(&filter),
        Err(_) => SchemeRegistry::global().iter().collect(),
    }
}

fn rig(scheme: SchemeKind, seed: u64) -> Simulation {
    Simulation::builder()
        .num_blocks(BLOCKS)
        .endurance_mean(ENDURANCE)
        .gap_interval(5)
        .sr_refresh_interval(5)
        .scheme(scheme)
        .seed(seed)
        .sample_interval(10_000)
        .verify_integrity(true)
        .build()
}

fn rig_with_plan(scheme: SchemeKind, seed: u64, plan: FaultPlan) -> Simulation {
    Simulation::builder()
        .num_blocks(BLOCKS)
        .endurance_mean(ENDURANCE)
        .gap_interval(5)
        .sr_refresh_interval(5)
        .scheme(scheme)
        .seed(seed)
        .sample_interval(10_000)
        .verify_integrity(true)
        .fault_plan(plan)
        .build()
}

/// Result of one crash-point replay.
struct Point {
    fired: bool,
    violations: u64,
    report: RecoveryReport,
}

/// Crash a reviver stack at device-write `k`, recover, finish the run.
fn reviver_point(scheme: SchemeKind, seed: u64, k: u64) -> Point {
    let mut sim = rig_with_plan(scheme, seed, FaultPlan::new().power_loss_at_write(k));
    let out = sim.run(StopCondition::Writes(STOP));
    let mut violations = 0;
    let mut report = RecoveryReport::default();
    let fired = out.reason == StopReason::PowerLoss;
    if fired {
        report = sim.recover();
        violations += sim.verify_all();
        sim.run(StopCondition::Writes(STOP));
    }
    violations += sim.verify_all();
    violations += sim.integrity_errors();
    Point {
        fired,
        violations,
        report,
    }
}

/// Reboot a baseline stack at software-write boundary `k`, finish the run.
fn baseline_point(scheme: SchemeKind, seed: u64, k: u64) -> Point {
    let mut sim = rig(scheme, seed);
    let out = sim.run(StopCondition::Writes(k));
    let mut violations = 0;
    let fired = out.reason == StopReason::ConditionMet;
    if fired {
        sim.recover();
        violations += sim.verify_all();
        sim.run(StopCondition::Writes(STOP));
    }
    violations += sim.verify_all();
    Point {
        fired,
        violations,
        report: RecoveryReport::default(),
    }
}

fn main() {
    handle_list_stacks();
    let seed = fault_seed();
    let interval = env_u64("WLR_CRASH_INTERVAL", 1_000).max(1);
    let from = env_u64("WLR_CRASH_FROM", 1_000);
    let to = env_u64("WLR_CRASH_TO", 37_000);
    let stacks = all_stacks();
    let points: Vec<u64> = (from..to).step_by(interval as usize).collect();
    eprintln!(
        "crash_sweep: {} blocks, endurance {ENDURANCE:.0}, seed {seed}, \
         {} stacks x {} crash points (every {interval} writes in {from}..{to})",
        BLOCKS,
        stacks.len(),
        points.len(),
    );

    let jobs: Vec<PooledJob<(usize, Point)>> = stacks
        .iter()
        .enumerate()
        .flat_map(|(si, spec)| {
            let scheme = spec.kind;
            let is_reviver = spec.revivable;
            points.iter().map(move |&k| {
                Box::new(move || {
                    let p = if is_reviver {
                        reviver_point(scheme, seed, k)
                    } else {
                        baseline_point(scheme, seed, k)
                    };
                    (si, p)
                }) as PooledJob<(usize, Point)>
            })
        })
        .collect();
    let results = run_pooled(jobs);

    let mut rows = Vec::new();
    let mut total_fired = 0u64;
    let mut total_violations = 0u64;
    for (si, spec) in stacks.iter().enumerate() {
        let name = spec.name;
        let mut fired = 0u64;
        let mut violations = 0u64;
        let mut agg = RecoveryReport::default();
        for p in results.iter().filter(|(j, _)| *j == si).map(|(_, p)| p) {
            if p.fired {
                fired += 1;
            }
            violations += p.violations;
            agg.absorb(&p.report);
        }
        total_fired += fired;
        total_violations += violations;
        rows.push(vec![
            name.to_string(),
            format!("{fired}/{}", points.len()),
            violations.to_string(),
            agg.blocks_scanned.to_string(),
            agg.links_recovered.to_string(),
            agg.torn_links_dropped.to_string(),
            agg.torn_switch_repairs.to_string(),
            agg.migration_replays.to_string(),
        ]);
    }
    print_table(
        "crash sweep",
        &[
            "stack",
            "fired",
            "violations",
            "scanned",
            "links",
            "torn",
            "switch-fix",
            "replays",
        ],
        &rows,
    );
    println!(
        "{} crash points fired across {} stacks; {} oracle violations",
        total_fired,
        stacks.len(),
        total_violations
    );
    if total_violations > 0 {
        eprintln!("FAIL: crash sweep found {total_violations} oracle violations");
        std::process::exit(1);
    }
}
