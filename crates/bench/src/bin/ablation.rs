//! Ablations of WL-Reviver's design choices (DESIGN.md §4).
//!
//! ```text
//! cargo run --release -p wlr-bench --bin ablation -- <which>
//! ```
//!
//! where `<which>` is one of `chains`, `acquisition`, `ptr-section`,
//! `cache`, `randomizer`, `security-refresh`, or `all`.

use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{SchemeKind, Simulation, SimulationBuilder, StopCondition};
use wlr_bench::{
    exp_seed, fork_warmup_for, print_table, replicate_seeds, run_pooled, run_replicated_forked,
    scaled_gap_interval, ForkSweep,
};

/// Boxes a row-producing closure for [`run_pooled`]: every ablation's
/// independent configurations run concurrently on the shared pool.
fn row_job(
    job: impl FnOnce() -> Vec<String> + Send + 'static,
) -> Box<dyn FnOnce() -> Vec<String> + Send> {
    Box::new(job)
}
use wlr_trace::Benchmark;
use wlr_wl::RandomizerKind;

const BLOCKS: u64 = 1 << 13;
const ENDURANCE: f64 = 8_000.0;

fn base(scheme: SchemeKind) -> SimulationBuilder {
    let psi = scaled_gap_interval(BLOCKS, ENDURANCE);
    Simulation::builder()
        .num_blocks(BLOCKS)
        .endurance_mean(ENDURANCE)
        .gap_interval(psi)
        .sr_refresh_interval(psi)
        .scheme(scheme)
        .seed(exp_seed())
        .workload(Benchmark::Ocean.build(BLOCKS, exp_seed()))
}

/// One-step chains (Figures 2–3) vs letting chains grow.
fn chains() {
    let jobs = [("one-step (paper)", true), ("unbounded chains", false)]
        .map(|(name, switching)| {
            row_job(move || {
                let mut sim = base(SchemeKind::ReviverStartGap)
                    .reviver_chain_switching(switching)
                    .build();
                sim.run(StopCondition::DeadFraction(0.20));
                let ctl = sim.controller().as_reviver().unwrap();
                let lengths = ctl.chain_lengths();
                let max = lengths.iter().max().copied().unwrap_or(0);
                let avg = if lengths.is_empty() {
                    0.0
                } else {
                    lengths.iter().map(|&l| l as f64).sum::<f64>() / lengths.len() as f64
                };
                let req = sim.controller().request_stats();
                vec![
                    name.to_string(),
                    format!("{}", sim.writes_issued()),
                    format!("{:.3}", req.avg_access_time()),
                    format!("{avg:.2}"),
                    max.to_string(),
                    ctl.counters().switches.to_string(),
                ]
            })
        })
        .into_iter()
        .collect();
    let rows = run_pooled(jobs);
    print_table(
        "chain switching (run to 20% failed blocks, ocean)",
        &[
            "mode",
            "writes",
            "avg access",
            "avg chain",
            "max chain",
            "switches",
        ],
        &rows,
    );
}

/// Reactive (delayed, paper) vs proactive page acquisition.
fn acquisition() {
    let jobs = [("reactive (paper)", false), ("proactive (new IRQ)", true)]
        .map(|(name, proactive)| {
            row_job(move || {
                let mut sim = base(SchemeKind::ReviverStartGap)
                    .reviver_proactive(proactive)
                    .build();
                sim.run(StopCondition::DeadFraction(0.20));
                let ctl = sim.controller().as_reviver().unwrap();
                let c = ctl.counters();
                vec![
                    name.to_string(),
                    format!("{}", sim.writes_issued()),
                    c.suspensions.to_string(),
                    c.fake_reports.to_string(),
                    sim.lost_writes().to_string(),
                    sim.os().failure_reports().to_string(),
                ]
            })
        })
        .into_iter()
        .collect();
    let rows = run_pooled(jobs);
    print_table(
        "space acquisition policy (run to 20% failed blocks, ocean)",
        &[
            "mode",
            "writes",
            "suspensions",
            "fake reports",
            "lost writes",
            "OS exceptions",
        ],
        &rows,
    );
    println!("The proactive variant avoids sacrificed writes at the cost of a new");
    println!("OS interrupt type — the adoption barrier §III-A refuses to pay.");
}

/// Inverse-pointer width: 2/4/8-byte pointers change the section size and
/// the spares harvested per page (Figure 4's layout).
fn ptr_section() {
    let jobs = [2u64, 4, 8, 16]
        .map(|bytes| {
            row_job(move || {
                let mut sim = base(SchemeKind::ReviverStartGap)
                    .reviver_pointer_bytes(bytes)
                    .build();
                sim.run(StopCondition::DeadFraction(0.20));
                let ctl = sim.controller().as_reviver().unwrap();
                let ppb = 64 / bytes;
                let section = 64u64.div_ceil(ppb + 1);
                vec![
                    format!("{bytes} B"),
                    format!("{section} blocks"),
                    format!("{}", 64 - section),
                    format!("{}", ctl.counters().spare_grants),
                    format!("{}", sim.os().retired_pages()),
                    format!("{}", sim.writes_issued()),
                ]
            })
        })
        .into_iter()
        .collect();
    let rows = run_pooled(jobs);
    print_table(
        "inverse-pointer width (per 64-block page; run to 20% failed)",
        &[
            "pointer",
            "section",
            "spares/page",
            "grants",
            "pages lost",
            "writes",
        ],
        &rows,
    );
}

/// Remap-cache size sweep (Table II uses 32 KB).
fn cache() {
    let jobs = [0usize, 1, 4, 16, 32, 128]
        .map(|kib| {
            row_job(move || {
                let mut builder = base(SchemeKind::ReviverStartGap);
                if kib > 0 {
                    builder = builder.cache_bytes(kib * 1024);
                }
                let mut sim = builder.build();
                sim.run(StopCondition::DeadFraction(0.20));
                // Measure a fresh window at the final failure level.
                sim.controller_mut().reset_request_stats();
                sim.run(StopCondition::Writes(sim.writes_issued() + 500_000));
                let req = sim.controller().request_stats();
                let hit = sim
                    .controller()
                    .as_reviver()
                    .unwrap()
                    .cache_hit_ratio()
                    .map(|h| format!("{:.1}%", h * 100.0))
                    .unwrap_or_else(|| "-".into());
                vec![
                    if kib == 0 {
                        "none".into()
                    } else {
                        format!("{kib} KiB")
                    },
                    format!("{:.4}", req.avg_access_time()),
                    hit,
                ]
            })
        })
        .into_iter()
        .collect();
    let rows = run_pooled(jobs);
    print_table(
        "remap-cache size at 20% failed blocks (ocean)",
        &["cache", "avg access", "hit ratio"],
        &rows,
    );
}

/// Start-Gap randomizer variants under WL-Reviver.
fn randomizer() {
    let seed = exp_seed();
    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<String> + Send>> = Vec::new();
    for (name, kind) in [
        ("Feistel (paper FPB)", RandomizerKind::Feistel { seed }),
        ("table (paper RIB)", RandomizerKind::Table { seed }),
        (
            "half-restricted (LLS)",
            RandomizerKind::HalfRestricted { seed },
        ),
        ("identity (none)", RandomizerKind::Identity),
    ] {
        for bench in [Benchmark::Ocean, Benchmark::Mg] {
            jobs.push(row_job(move || {
                let mut sim = base(SchemeKind::ReviverStartGap)
                    .sg_randomizer(kind)
                    .workload(bench.build(BLOCKS, seed))
                    .build();
                let out = sim.run(StopCondition::UsableBelow(0.70));
                vec![
                    name.to_string(),
                    bench.name().to_string(),
                    out.writes_issued.to_string(),
                ]
            }));
        }
    }
    let rows = run_pooled(jobs);
    print_table(
        "address randomization under WL-Reviver (writes to 30% space loss)",
        &["randomizer", "workload", "lifetime"],
        &rows,
    );
    println!("The half-restricted variant is the adaptation LLS imposes. Under our");
    println!("reconstruction it costs little by itself — the measured LLS deficit in");
    println!("Figure 8 comes mainly from chunk-granular space loss and salvage-group");
    println!("inefficiency. Removing randomization entirely (identity) is what");
    println!("collapses lifetime.");
}

/// Framework generality: Security Refresh with and without revival.
///
/// Honors `WLR_REPLICATES`: the sweep warms each stack once and forks
/// one future per replicate seed (lifetimes reported as a mean), so
/// multi-seed runs don't replay the shared warmup per seed.
fn security_refresh() {
    let seeds = replicate_seeds();
    let stop = StopCondition::UsableBelow(0.70);
    let reg = SchemeRegistry::global();
    let mut configs: Vec<(String, ForkSweep)> = Vec::new();
    for (name, scheme) in [
        ("ECP6-SR", reg.kind("sr")),
        ("ECP6-SR-WLR", reg.kind("reviver-sr")),
        ("ECP6-SR2-WLR", reg.kind("reviver-sr2")),
        ("ECP6-SG", reg.kind("sg")),
        ("ECP6-SG-WLR", reg.kind("reviver-sg")),
        ("ECP6-SG16-WLR", reg.kind("reviver-tiled")),
        ("ECP6-SW", reg.kind("softwear")),
        ("ECP6-SW-WLR", reg.kind("softwear-wlr")),
        ("ECP6-ASG", reg.kind("adaptive-sg")),
        ("ECP6-ASG-WLR", reg.kind("adaptive-sg-wlr")),
    ] {
        for bench in [Benchmark::Ocean, Benchmark::Mg] {
            configs.push((
                format!("{name}\t{}", bench.name()),
                ForkSweep {
                    build: Box::new(move || {
                        base(scheme)
                            .workload(bench.build(BLOCKS, exp_seed()))
                            .build()
                    }),
                    warmup: fork_warmup_for(stop),
                    stop,
                    reseed: Box::new(move |seed| Box::new(bench.build(BLOCKS, seed))),
                },
            ));
        }
    }
    let reps = run_replicated_forked(configs, &seeds);
    let rows: Vec<Vec<String>> = reps
        .iter()
        .map(|rep| {
            let (mean, _, _) = rep.writes_stats();
            let (stack, bench) = rep.label.split_once('\t').expect("label has two parts");
            vec![stack.to_string(), bench.to_string(), format!("{mean:.0}")]
        })
        .collect();
    print_table(
        "framework generality: six schemes, one framework (lifetime)",
        &["stack", "workload", "lifetime"],
        &rows,
    );
    println!("WL-Reviver revives single-level SR, two-level SR (SR2), plain and");
    println!("region-tiled Start-Gap (SG16), table-mapped SoftWear (SW) and the");
    println!("SAWL-style adaptive Start-Gap wrapper (ASG) through the same");
    println!("one-operation interface, with no scheme modifications (§IV's note).");
}

/// Page-recovery strategies head to head (the §I-C landscape): plain
/// page retirement, Zombie's spare-block pairing (leveling frozen),
/// FREE-p's pre-reserve, and WL-Reviver.
fn page_recovery() {
    let reg = SchemeRegistry::global();
    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<String> + Send>> = Vec::new();
    for (name, scheme) in [
        ("ECP6 (page retirement)", reg.kind("ecc")),
        ("ECP6-SG-Zombie", reg.kind("zombie")),
        ("ECP6-SG-FREEp 10%", reg.kind("freep")),
        ("ECP6-SG-WLR", reg.kind("reviver-sg")),
    ] {
        for bench in [Benchmark::Ocean, Benchmark::Mg] {
            // FREE-p carves its reserve out of the chip; size the
            // workload to the remaining visible space.
            let app = match scheme {
                SchemeKind::Freep { reserve_frac } => {
                    let reserve_pages = ((BLOCKS as f64 * reserve_frac) / 64.0).round() as u64;
                    BLOCKS - reserve_pages * 64
                }
                _ => BLOCKS,
            };
            jobs.push(row_job(move || {
                let mut sim = base(scheme).workload(bench.build(app, exp_seed())).build();
                let out = sim.run(StopCondition::UsableBelow(0.80));
                vec![
                    name.to_string(),
                    bench.name().to_string(),
                    out.writes_issued.to_string(),
                ]
            }));
        }
    }
    let rows = run_pooled(jobs);
    print_table(
        "page-recovery strategies (writes to 20% space loss)",
        &["strategy", "workload", "lifetime"],
        &rows,
    );
    println!("Zombie and WL-Reviver acquire pages identically (≈1 page per ~60");
    println!("failures); the entire difference is whether wear leveling survives —");
    println!("the paper's §I-D indirection argument, isolated.");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    println!("WL-Reviver design ablations — {which}\n");
    match which.as_str() {
        "chains" => chains(),
        "acquisition" => acquisition(),
        "ptr-section" => ptr_section(),
        "cache" => cache(),
        "randomizer" => randomizer(),
        "security-refresh" => security_refresh(),
        "page-recovery" => page_recovery(),
        "all" => {
            chains();
            acquisition();
            ptr_section();
            cache();
            randomizer();
            security_refresh();
            page_recovery();
        }
        other => {
            eprintln!("unknown ablation `{other}`; use chains|acquisition|ptr-section|cache|randomizer|security-refresh|page-recovery|all");
            std::process::exit(2);
        }
    }
}
