//! Figure 6 — percentage of surviving (usable) memory blocks as writes
//! accumulate, for `ocean` (a) and `mg` (b), under six life-extension
//! stacks: ECP6, PAYG, ECP6-SG, PAYG-SG, ECP6-SG-WLR, PAYG-SG-WLR.
//! Curves are shown down to 70% survival, as in the paper.
//!
//! ```text
//! cargo run --release -p wlr-bench --bin fig6
//! ```

use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{EccKind, SchemeKind, StopCondition};
use wlr_bench::{exp_builder, exp_seed, print_series, run_curve, run_parallel, Curve, EXP_BLOCKS};
use wlr_trace::Benchmark;

fn job(
    bench: Benchmark,
    ecc: EccKind,
    scheme: SchemeKind,
    label: String,
) -> Box<dyn FnOnce() -> Curve + Send> {
    Box::new(move || {
        let sim = exp_builder()
            .ecc(ecc)
            .scheme(scheme)
            .workload(bench.build(EXP_BLOCKS, exp_seed()))
            .sample_interval(500_000)
            .build();
        run_curve(&label, sim, StopCondition::UsableBelow(0.70))
    })
}

fn main() {
    println!("Figure 6 — block survival vs writes (shown to 70%)\n");
    let ecp6 = EccKind::Ecp(6);
    let payg = EccKind::Payg { ratio: 0.77 };
    let reg = SchemeRegistry::global();
    let stacks: [(&str, EccKind, SchemeKind); 6] = [
        ("ECP6", ecp6, reg.kind("ecc")),
        ("PAYG", payg, reg.kind("ecc")),
        ("ECP6-SG", ecp6, reg.kind("sg")),
        ("PAYG-SG", payg, reg.kind("sg")),
        ("ECP6-SG-WLR", ecp6, reg.kind("reviver-sg")),
        ("PAYG-SG-WLR", payg, reg.kind("reviver-sg")),
    ];

    for (panel, bench) in [("(a)", Benchmark::Ocean), ("(b)", Benchmark::Mg)] {
        println!(
            "--- Figure 6{panel}: {bench} (CoV {:.2}) ---\n",
            bench.write_cov()
        );
        let configs = stacks
            .iter()
            .map(|(name, ecc, scheme)| {
                let label = format!("{bench}/{name}");
                (label.clone(), job(bench, *ecc, *scheme, label))
            })
            .collect();
        let curves = run_parallel(configs);
        for curve in &curves {
            print_series(curve, |p| p.usable, 12);
        }
        // Summary line: writes at which each stack crossed 90% survival.
        println!("writes at 90% survival:");
        for curve in &curves {
            let at = curve
                .series
                .writes_at_usable(0.90)
                .map(|w| w.to_string())
                .unwrap_or_else(|| "never (run ended above 90%)".into());
            println!("  {:<22} {}", curve.label, at);
        }
        println!();
    }
    println!("Expected shape (paper §IV-B): without WL the curves drop almost");
    println!("immediately; SG helps ocean far more than mg; WLR keeps both near");
    println!("100% longest and degrades gracefully; PAYG postpones the first");
    println!("failure but gains less from revival than ECP6 does.");
}
