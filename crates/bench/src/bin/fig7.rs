//! Figure 7 — percentage of user-usable space vs writes: WL-Reviver
//! against FREE-p adapted with 0%, 5%, 10% and 15% pre-reserved space,
//! for `ocean` (a) and `mg` (b). ECP6 + Start-Gap everywhere.
//!
//! ```text
//! cargo run --release -p wlr-bench --bin fig7
//! ```

use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{SchemeKind, StopCondition};
use wlr_bench::{exp_builder, exp_seed, print_series, run_curve, run_parallel, Curve, EXP_BLOCKS};
use wlr_trace::Benchmark;

fn job(bench: Benchmark, scheme: SchemeKind, label: String) -> Box<dyn FnOnce() -> Curve + Send> {
    Box::new(move || {
        // FREE-p reserves are carved out of the same total chip, so the
        // workload sees a smaller application space.
        let mut builder = exp_builder().scheme(scheme).sample_interval(500_000);
        let app_blocks = match scheme {
            SchemeKind::Freep { reserve_frac } => {
                let bpp = 64;
                let reserve_pages =
                    ((EXP_BLOCKS as f64 * reserve_frac) / bpp as f64).round() as u64;
                EXP_BLOCKS - reserve_pages * bpp
            }
            _ => EXP_BLOCKS,
        };
        builder = builder.workload(bench.build(app_blocks, exp_seed()));
        run_curve(&label, builder.build(), StopCondition::UsableBelow(0.60))
    })
}

fn main() {
    println!("Figure 7 — user-usable space vs writes: WL-Reviver vs FREE-p\n");
    let stacks: Vec<(String, SchemeKind)> = vec![
        (
            "WL-Reviver".into(),
            SchemeRegistry::global().kind("reviver-sg"),
        ),
        ("FREE-p 0%".into(), SchemeKind::Freep { reserve_frac: 0.0 }),
        ("FREE-p 5%".into(), SchemeKind::Freep { reserve_frac: 0.05 }),
        (
            "FREE-p 10%".into(),
            SchemeKind::Freep { reserve_frac: 0.10 },
        ),
        (
            "FREE-p 15%".into(),
            SchemeKind::Freep { reserve_frac: 0.15 },
        ),
    ];

    for (panel, bench) in [("(a)", Benchmark::Ocean), ("(b)", Benchmark::Mg)] {
        println!("--- Figure 7{panel}: {bench} ---\n");
        let configs = stacks
            .iter()
            .map(|(name, scheme)| {
                let label = format!("{bench}/{name}");
                (label.clone(), job(bench, *scheme, label))
            })
            .collect();
        let curves = run_parallel(configs);
        for curve in &curves {
            print_series(curve, |p| p.usable, 12);
        }
        println!("writes at 80% usable:");
        for curve in &curves {
            let at = curve
                .series
                .writes_at_usable(0.80)
                .map(|w| w.to_string())
                .unwrap_or_else(|| "never reached".into());
            println!("  {:<26} {}", curve.label, at);
        }
        println!();
    }
    println!("Expected shape (paper §IV-C): each FREE-p curve starts at 100% minus");
    println!("its reserve, holds flat until the reserve is consumed, then collapses");
    println!("as Start-Gap ceases; small reserves do better for ocean, large ones");
    println!("for mg; WL-Reviver starts at 100% and degrades latest and slowest.");
}
