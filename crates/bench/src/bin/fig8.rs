//! Figure 8 — reduction of software-usable space with ongoing writes:
//! LLS vs WL-Reviver, for `ocean` and `mg` (ECP6 + Start-Gap).
//!
//! The paper's reading: LLS prevents the precipitous loss but sustains
//! far fewer writes than WL-Reviver, mostly because integrating Start-Gap
//! forces LLS to restrict the address randomization (half-space mapping),
//! which keeps concentrated writes from spreading.
//!
//! ```text
//! cargo run --release -p wlr-bench --bin fig8
//! ```

use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{SchemeKind, StopCondition};
use wlr_bench::{exp_builder, exp_seed, print_series, run_curve, run_parallel, Curve, EXP_BLOCKS};
use wlr_trace::Benchmark;

fn job(bench: Benchmark, scheme: SchemeKind, label: String) -> Box<dyn FnOnce() -> Curve + Send> {
    Box::new(move || {
        let sim = exp_builder()
            .scheme(scheme)
            .workload(bench.build(EXP_BLOCKS, exp_seed()))
            .sample_interval(500_000)
            .build();
        run_curve(&label, sim, StopCondition::UsableBelow(0.60))
    })
}

fn main() {
    println!("Figure 8 — software-usable space vs writes: LLS vs WL-Reviver\n");
    let reg = SchemeRegistry::global();
    let mut configs = Vec::new();
    for bench in [Benchmark::Ocean, Benchmark::Mg] {
        for (name, scheme) in [
            ("LLS", reg.kind("lls")),
            ("WL-Reviver", reg.kind("reviver-sg")),
        ] {
            let label = format!("{bench}/{name}");
            configs.push((label.clone(), job(bench, scheme, label)));
        }
    }
    let curves = run_parallel(configs);
    for curve in &curves {
        print_series(curve, |p| p.usable, 14);
    }
    println!("writes sustained to 70% usable:");
    for curve in &curves {
        let at = curve
            .series
            .writes_at_usable(0.70)
            .map(|w| w.to_string())
            .unwrap_or_else(|| format!("> {} (run end)", curve.outcome.writes_issued));
        println!("  {:<24} {}", curve.label, at);
    }
    println!();
    println!("Expected shape (paper §IV-D): LLS's usable space steps down in chunk-");
    println!("sized increments and it sustains fewer writes than WL-Reviver; ocean's");
    println!("more uniform writes barely help LLS. (Our reconstructed LLS shows a");
    println!("smaller deficit than the paper's — see EXPERIMENTS.md.)");
}
