//! Table II — average PCM access time per software request and
//! software-usable capacity, at 10% / 20% / 30% failed blocks, for LLS vs
//! WL-Reviver, with the 32 KB remap cache the paper configures for both.
//!
//! Failures are injected to reach each ratio exactly (every injected
//! failure is then *discovered* by the controller through a write, so
//! linking, page/chunk acquisition and chain maintenance all run), and
//! access time is measured over workload-driven requests so the cache
//! sees each benchmark's locality.
//!
//! ```text
//! cargo run --release -p wlr-bench --bin table2
//! ```

use wl_reviver::controller::{Controller, WriteResult};
use wl_reviver::lls::LlsController;
use wl_reviver::reviver::RevivedController;
use wlr_base::rng::Rng;
use wlr_base::{Geometry, Pa};
use wlr_bench::{exp_seed, print_table, scaled_gap_interval, EXP_BLOCKS};
use wlr_pcm::{Ecp, PcmDevice};
use wlr_trace::{Benchmark, Workload};
use wlr_wl::{RandomizerKind, StartGap};

const CACHE_BYTES: usize = 32 * 1024;
const MEASURE_REQUESTS: u64 = 2_000_000;

#[allow(clippy::large_enum_variant)] // two one-off experiment rigs
enum Ctl {
    Wlr(RevivedController),
    Lls(LlsController),
}

impl Ctl {
    fn ctl(&mut self) -> &mut dyn Controller {
        match self {
            Ctl::Wlr(c) => c,
            Ctl::Lls(c) => c,
        }
    }

    fn map(&self, pa: Pa) -> wlr_base::Da {
        match self {
            Ctl::Wlr(c) => c.wear_leveler().map(pa),
            Ctl::Lls(c) => c.wear_leveler().map(pa),
        }
    }

    fn inject(&mut self, da: wlr_base::Da) {
        match self {
            Ctl::Wlr(c) => c.inject_dead(da),
            Ctl::Lls(c) => c.inject_dead(da),
        }
    }
}

fn build(scheme: &str, seed: u64) -> Ctl {
    let geo = Geometry::builder().num_blocks(EXP_BLOCKS).build().unwrap();
    // Endurance high enough that only injected failures occur during the
    // measurement (Table II controls the failure ratio explicitly).
    let device = |extra: u64| {
        PcmDevice::builder(geo)
            .extra_blocks(extra)
            .endurance_mean(1e12)
            .seed(seed)
            .ecc(Box::new(Ecp::ecp6()))
            .build()
    };
    let psi = scaled_gap_interval(EXP_BLOCKS, 1e4);
    match scheme {
        "WL-Reviver" => {
            let wl = StartGap::builder(EXP_BLOCKS)
                .gap_interval(psi)
                .randomizer(RandomizerKind::Feistel { seed })
                .build();
            Ctl::Wlr(
                RevivedController::builder(device(1), Box::new(wl))
                    .cache_bytes(CACHE_BYTES)
                    .build(),
            )
        }
        "LLS" => {
            let chunk = EXP_BLOCKS / 16;
            let wl = StartGap::builder(EXP_BLOCKS)
                .gap_interval(psi)
                .randomizer(RandomizerKind::HalfRestricted { seed })
                .build();
            Ctl::Lls(
                LlsController::builder(device(1 + EXP_BLOCKS), Box::new(wl))
                    .chunk_blocks(chunk)
                    .max_chunks(16)
                    .cache_bytes(CACHE_BYTES)
                    .build(),
            )
        }
        other => panic!("unknown scheme {other}"),
    }
}

/// Injects failures to `ratio` of the chip, playing the OS; returns the
/// number of software pages lost (retired for spares or chunks).
fn inject_to_ratio(ctl: &mut Ctl, ratio: f64, rng: &mut Rng, retired: &mut [bool]) -> u64 {
    let bpp = 64u64;
    let target = (EXP_BLOCKS as f64 * ratio) as u64;
    let mut retired_pages = 0u64;
    let mut guard = 0u64;
    while ctl.ctl().device().dead_blocks_under(EXP_BLOCKS) < target {
        guard += 1;
        assert!(guard < EXP_BLOCKS * 64, "injection did not converge");
        let pa = Pa::new(rng.gen_range(EXP_BLOCKS));
        if retired[(pa.index() / bpp) as usize] {
            continue;
        }
        let da = ctl.map(pa);
        if da.index() >= EXP_BLOCKS {
            continue; // don't inject into the gap line
        }
        ctl.inject(da);
        // Discover the failure through a write, handling OS traffic.
        for _ in 0..4 {
            match ctl.ctl().write(pa, guard) {
                WriteResult::Ok => break,
                WriteResult::ReportFailure(rep) => {
                    let page = rep.index() / bpp;
                    if !retired[page as usize] {
                        retired[page as usize] = true;
                        retired_pages += 1;
                    }
                    ctl.ctl().on_page_retired(wlr_base::PageId::new(page));
                    break;
                }
                WriteResult::RequestPages(pages) => {
                    for p in pages {
                        if !retired[p.as_usize()] {
                            retired[p.as_usize()] = true;
                            retired_pages += 1;
                        }
                        ctl.ctl().on_page_retired(p);
                    }
                }
                WriteResult::Dropped(e) => panic!("write dropped without faults: {e}"),
            }
        }
    }
    retired_pages
}

/// Measures average accesses per request over workload-driven traffic
/// (even read/write mix, as cache behavior depends on locality).
fn measure(ctl: &mut Ctl, workload: &mut dyn Workload, retired: &[bool]) -> f64 {
    let bpp = 64u64;
    ctl.ctl().reset_request_stats();
    let mut done = 0u64;
    let mut guard = 0u64;
    while done < MEASURE_REQUESTS {
        guard += 1;
        assert!(guard < MEASURE_REQUESTS * 8, "measurement starved");
        let pa = Pa::new(workload.next_write().index());
        if retired[(pa.index() / bpp) as usize] {
            continue;
        }
        if done.is_multiple_of(2) {
            ctl.ctl().read(pa);
        } else if ctl.ctl().write(pa, done) != WriteResult::Ok {
            continue;
        }
        done += 1;
    }
    ctl.ctl().request_stats().avg_access_time()
}

fn main() {
    println!("Table II — avg PCM access time (in PCM accesses) and software-usable");
    println!("space at fixed failure ratios, 32 KB remap cache for both schemes\n");

    let mut rows = Vec::new();
    for ratio in [0.10, 0.20, 0.30] {
        for scheme in ["LLS", "WL-Reviver"] {
            let mut cells = vec![format!("{:.0}%", ratio * 100.0), scheme.to_string()];
            for bench in [Benchmark::Mg, Benchmark::Ocean] {
                eprintln!("  {scheme} at {:.0}% on {bench} …", ratio * 100.0);
                let mut ctl = build(scheme, exp_seed());
                let mut rng = Rng::stream(exp_seed(), 0x7AB2);
                let mut retired = vec![false; (EXP_BLOCKS / 64) as usize];
                let lost_pages = inject_to_ratio(&mut ctl, ratio, &mut rng, &mut retired);
                let mut workload = bench.build(EXP_BLOCKS, exp_seed());
                let t = measure(&mut ctl, &mut workload, &retired);
                let usable = 1.0 - (lost_pages * 64) as f64 / EXP_BLOCKS as f64;
                cells.push(format!("{t:.3}"));
                cells.push(format!("{:.0}", usable * 100.0));
            }
            rows.push(cells);
        }
    }
    print_table(
        "avg access time / usable space",
        &[
            "Failure",
            "Name",
            "mg t",
            "mg usable%",
            "ocean t",
            "ocean usable%",
        ],
        &rows,
    );
    println!("Expected shape (paper Table II): with the cache both schemes sit near");
    println!("1.0 accesses/request; WL-Reviver leaves ~5 points more usable space at");
    println!("every failure ratio (e.g. 89% vs 84-85% at 10%).");
}
