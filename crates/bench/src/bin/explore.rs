//! `explore` — run a custom configuration from the command line.
//!
//! The figure binaries pin the paper's configurations; this tool exposes
//! the full parameter space for one-off studies:
//!
//! ```text
//! cargo run --release -p wlr-bench --bin explore -- \
//!     --blocks 16384 --endurance 1e4 --scheme reviver-sg \
//!     --workload mg --stop usable:0.7 --seed 7
//! ```
//!
//! Options (defaults in brackets):
//!
//! ```text
//! --blocks N          chip size in 64 B blocks [16384]
//! --endurance X       mean cell endurance in writes [1e4]
//! --cov X             endurance CoV [0.2]
//! --psi N             Start-Gap ψ / SR interval [auto-scaled]
//! --scheme S          any registry stack name (`--list-stacks` prints
//!                     them) or freep:<frac> [reviver-sg]
//! --ecc E             ecp<k> | payg[:ratio] [ecp6]
//! --workload W        a Table I name, uniform, zipf:<s>, cov:<x>,
//!                     trace:<path>, repeat:<n>, birthday:<n>x<epoch> [uniform]
//! --stop C            writes:<n> | dead:<frac> | usable:<frac> [usable:0.7]
//! --cache BYTES       remap cache size [none]
//! --seed N            experiment seed [42]
//! --seeds N           replicate over N seeds (seed..seed+N) on the worker
//!                     pool and report mean/min/max [1]
//! --sample N          writes between samples [auto]
//! --curve             print the full usable/survival series
//! ```

use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{EccKind, SchemeKind, Simulation, StopCondition};
use wlr_bench::{fork_warmup_for, run_replicated_forked, scaled_gap_interval, ForkSweep};
use wlr_trace::{
    Benchmark, BirthdayAttack, CovTargetedWorkload, RepeatAttack, SpatialMode, TraceWorkload,
    UniformWorkload, Workload, ZipfWorkload,
};

#[derive(Debug)]
struct Args {
    blocks: u64,
    endurance: f64,
    cov: f64,
    psi: Option<u64>,
    scheme: String,
    ecc: String,
    workload: String,
    stop: String,
    cache: Option<usize>,
    seed: u64,
    seeds: u64,
    sample: Option<u64>,
    curve: bool,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nsee the doc comment at the top of explore.rs for options");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        blocks: 1 << 14,
        endurance: 1e4,
        cov: 0.2,
        psi: None,
        scheme: "reviver-sg".into(),
        ecc: "ecp6".into(),
        workload: "uniform".into(),
        stop: "usable:0.7".into(),
        cache: None,
        seed: 42,
        seeds: 1,
        sample: None,
        curve: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--blocks" => args.blocks = parse_num(&val("--blocks")),
            "--endurance" => args.endurance = parse_f64(&val("--endurance")),
            "--cov" => args.cov = parse_f64(&val("--cov")),
            "--psi" => args.psi = Some(parse_num(&val("--psi"))),
            "--scheme" => args.scheme = val("--scheme"),
            "--ecc" => args.ecc = val("--ecc"),
            "--workload" => args.workload = val("--workload"),
            "--stop" => args.stop = val("--stop"),
            "--cache" => args.cache = Some(parse_num(&val("--cache")) as usize),
            "--seed" => args.seed = parse_num(&val("--seed")),
            "--seeds" => args.seeds = parse_num(&val("--seeds")).max(1),
            "--sample" => args.sample = Some(parse_num(&val("--sample"))),
            "--curve" => args.curve = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn parse_num(s: &str) -> u64 {
    parse_f64(s) as u64
}

fn parse_f64(s: &str) -> f64 {
    s.parse::<f64>()
        .unwrap_or_else(|_| usage(&format!("`{s}` is not a number")))
}

fn parse_scheme(s: &str) -> SchemeKind {
    // `freep:<frac>` carries a knob no registry name can express; every
    // other spelling resolves through the scheme registry.
    if let Some(frac) = s.strip_prefix("freep:") {
        return SchemeKind::Freep {
            reserve_frac: parse_f64(frac),
        };
    }
    match SchemeRegistry::global().resolve(s) {
        Ok(spec) => spec.kind,
        Err(e) => usage(&e.to_string()),
    }
}

fn parse_ecc(s: &str) -> EccKind {
    if let Some(k) = s.strip_prefix("ecp") {
        EccKind::Ecp(k.parse().unwrap_or_else(|_| usage("bad ecp<k>")))
    } else if s == "payg" {
        EccKind::Payg { ratio: 0.77 }
    } else if let Some(r) = s.strip_prefix("payg:") {
        EccKind::Payg {
            ratio: parse_f64(r),
        }
    } else {
        usage(&format!("unknown ecc `{s}`"))
    }
}

fn parse_workload(s: &str, blocks: u64, seed: u64) -> Box<dyn Workload> {
    for b in Benchmark::table1() {
        if b.name() == s {
            return Box::new(b.build(blocks, seed));
        }
    }
    if s == "uniform" {
        return Box::new(UniformWorkload::new(blocks, seed));
    }
    if let Some(z) = s.strip_prefix("zipf:") {
        return Box::new(ZipfWorkload::new(blocks, parse_f64(z), seed));
    }
    if let Some(c) = s.strip_prefix("cov:") {
        return Box::new(CovTargetedWorkload::new(
            blocks,
            parse_f64(c),
            SpatialMode::Clustered { run_blocks: 64 },
            seed,
        ));
    }
    if let Some(path) = s.strip_prefix("trace:") {
        let t = TraceWorkload::load(path)
            .unwrap_or_else(|e| usage(&format!("cannot load trace `{path}`: {e}")));
        if t.len() != blocks {
            usage(&format!(
                "trace space {} does not match --blocks {blocks}",
                t.len()
            ));
        }
        return Box::new(t);
    }
    if let Some(n) = s.strip_prefix("repeat:") {
        return Box::new(RepeatAttack::new(blocks, parse_num(n), seed));
    }
    if let Some(spec) = s.strip_prefix("birthday:") {
        let (n, epoch) = spec
            .split_once('x')
            .unwrap_or_else(|| usage("birthday:<n>x<epoch>"));
        return Box::new(BirthdayAttack::new(
            blocks,
            parse_num(n),
            parse_num(epoch),
            seed,
        ));
    }
    usage(&format!("unknown workload `{s}`"))
}

fn parse_stop(s: &str) -> StopCondition {
    if let Some(n) = s.strip_prefix("writes:") {
        StopCondition::Writes(parse_num(n))
    } else if let Some(f) = s.strip_prefix("dead:") {
        StopCondition::DeadFraction(parse_f64(f))
    } else if let Some(f) = s.strip_prefix("usable:") {
        StopCondition::UsableBelow(parse_f64(f))
    } else {
        usage(&format!("unknown stop condition `{s}`"))
    }
}

/// Multi-seed mode: one shared warmup, one forked future per seed,
/// summarized as mean/min/max. Replicates diverge by workload stream
/// only — they share the warmup and the device's endurance draws (see
/// EXPERIMENTS.md on fork-shared replicates).
fn run_replicates(args: &Args, scheme: SchemeKind, stop: StopCondition, psi: u64, app_blocks: u64) {
    let seeds: Vec<u64> = (args.seed..args.seed + args.seeds).collect();
    let label = format!("{}/{}/{}", args.scheme, args.workload, args.stop);
    let a = ArgsForJob {
        blocks: args.blocks,
        endurance: args.endurance,
        cov: args.cov,
        ecc: args.ecc.clone(),
        workload: args.workload.clone(),
        cache: args.cache,
        sample: args.sample,
    };
    eprintln!(
        "running {label} on {} blocks × {} seeds (ψ={psi}, endurance {:.0}, forked) …",
        args.blocks, args.seeds, args.endurance
    );
    let base_seed = args.seed;
    let workload_spec = args.workload.clone();
    let configs: Vec<(String, ForkSweep)> = vec![(
        label.clone(),
        ForkSweep {
            build: Box::new(move || {
                let mut builder = Simulation::builder()
                    .num_blocks(a.blocks)
                    .endurance_mean(a.endurance)
                    .endurance_cov(a.cov)
                    .gap_interval(psi)
                    .sr_refresh_interval(psi)
                    .ecc(parse_ecc(&a.ecc))
                    .scheme(scheme)
                    .seed(base_seed)
                    .workload_boxed(parse_workload(&a.workload, app_blocks, base_seed));
                if let Some(bytes) = a.cache {
                    builder = builder.cache_bytes(bytes);
                }
                if let Some(sample) = a.sample {
                    builder = builder.sample_interval(sample);
                }
                builder.build()
            }),
            warmup: fork_warmup_for(stop),
            stop,
            reseed: Box::new(move |seed| parse_workload(&workload_spec, app_blocks, seed)),
        },
    )];
    let rep = run_replicated_forked(configs, &seeds).remove(0);
    let show = |name: &str, (mean, min, max): (f64, f64, f64), pct: bool| {
        if pct {
            println!(
                "{name}: mean {:.2}%  min {:.2}%  max {:.2}%",
                mean * 100.0,
                min * 100.0,
                max * 100.0
            );
        } else {
            println!("{name}: mean {mean:.0}  min {min:.0}  max {max:.0}");
        }
    };
    println!("replicates        : {}", args.seeds);
    show("writes issued     ", rep.writes_stats(), false);
    show("usable space      ", rep.stats(|c| c.outcome.usable), true);
    show(
        "block survival    ",
        rep.stats(|c| c.outcome.survival),
        true,
    );
}

/// The plain-data subset of [`Args`] a replicate job needs.
struct ArgsForJob {
    blocks: u64,
    endurance: f64,
    cov: f64,
    ecc: String,
    workload: String,
    cache: Option<usize>,
    sample: Option<u64>,
}

fn main() {
    wlr_bench::report::handle_list_stacks();
    let args = parse_args();
    let psi = args
        .psi
        .unwrap_or_else(|| scaled_gap_interval(args.blocks, args.endurance));
    let scheme = parse_scheme(&args.scheme);
    let stop = parse_stop(&args.stop);

    let mut builder = Simulation::builder()
        .num_blocks(args.blocks)
        .endurance_mean(args.endurance)
        .endurance_cov(args.cov)
        .gap_interval(psi)
        .sr_refresh_interval(psi)
        .ecc(parse_ecc(&args.ecc))
        .scheme(scheme)
        .seed(args.seed);
    if let Some(bytes) = args.cache {
        builder = builder.cache_bytes(bytes);
    }
    if let Some(sample) = args.sample {
        builder = builder.sample_interval(sample);
    }
    // The Freep variant shrinks the visible space; size the workload to it.
    let probe = builder.build();
    let app_blocks = probe.os().app_blocks();
    drop(probe);

    if args.seeds > 1 {
        run_replicates(&args, scheme, stop, psi, app_blocks);
        return;
    }

    let mut builder = Simulation::builder()
        .num_blocks(args.blocks)
        .endurance_mean(args.endurance)
        .endurance_cov(args.cov)
        .gap_interval(psi)
        .sr_refresh_interval(psi)
        .ecc(parse_ecc(&args.ecc))
        .scheme(scheme)
        .seed(args.seed)
        .workload_boxed(parse_workload(&args.workload, app_blocks, args.seed));
    if let Some(bytes) = args.cache {
        builder = builder.cache_bytes(bytes);
    }
    if let Some(sample) = args.sample {
        builder = builder.sample_interval(sample);
    }
    let mut sim = builder.build();

    eprintln!(
        "running {} / {} / {} on {} blocks (ψ={psi}, endurance {:.0}, seed {}) …",
        sim.controller().label(),
        args.workload,
        args.stop,
        args.blocks,
        args.endurance,
        args.seed
    );
    let out = sim.run(stop);

    if args.curve {
        println!(
            "{:>14} {:>9} {:>9} {:>10} {:>7}",
            "writes", "usable", "survival", "avg access", "wl"
        );
        for p in sim.series() {
            println!(
                "{:>14} {:>8.2}% {:>8.2}% {:>10.4} {:>7}",
                p.writes,
                p.usable * 100.0,
                p.survival * 100.0,
                p.avg_access_time,
                if p.wl_active { "on" } else { "OFF" }
            );
        }
        println!();
    }
    println!("writes issued     : {}", out.writes_issued);
    println!("stop reason       : {:?}", out.reason);
    println!("usable space      : {:.2}%", out.usable * 100.0);
    println!("block survival    : {:.2}%", out.survival * 100.0);
    println!(
        "dead blocks       : {}",
        sim.controller().device().dead_blocks()
    );
    println!("pages retired     : {}", sim.os().retired_pages());
    println!("OS failure reports: {}", sim.os().failure_reports());
    println!(
        "wear leveling     : {}",
        if sim.controller().wl_active() {
            "active"
        } else {
            "frozen"
        }
    );
    if let Some(r) = sim.controller().as_reviver() {
        let c = r.counters();
        println!(
            "framework counters: links {}, switches {}, loops {}, suspensions {}, fake reports {}",
            c.links,
            c.switches,
            r.loop_blocks(),
            c.suspensions,
            c.fake_reports
        );
    }
}
