//! `bench_core` — end-to-end write-engine throughput, tracked over time.
//!
//! Runs one full lifetime curve (uniform traffic to 70 % usable space)
//! for each key scheme stack and reports simulated writes per wall-clock
//! second. Results are written to `BENCH_core.json`:
//!
//! * first run (no file): records the numbers as both `baseline` and
//!   `current`;
//! * later runs: preserves the existing `baseline` block verbatim,
//!   replaces `current`, and reports `speedup_vs_baseline` per stack.
//!
//! So the committed baseline is the throughput of the tree the file was
//! first generated from, and the JSON carries the perf trajectory of the
//! hot path across PRs. Delete the file (or set `WLR_BENCH_RESET=1`) to
//! re-baseline. `WLR_BENCH_OUT` overrides the output path.

use std::fmt::Write as _;
use std::time::Instant;
use wl_reviver::registry::StackSpec;
use wl_reviver::sim::StopCondition;
use wlr_bench::report::{
    baseline_field, bench_out_path, handle_list_stacks, load_baseline, resolve_stack_or_exit,
    rows_json, write_report,
};
use wlr_bench::{exp_builder, exp_seed, EXP_BLOCKS, EXP_ENDURANCE};

/// The perf-tracked registry subset: the hot-path stacks whose throughput
/// this report trends (the sweep binaries cover every registered stack).
const STACK_NAMES: &[&str] = &["ecc", "sg", "reviver-sg", "reviver-sr"];

fn stacks() -> Vec<&'static StackSpec> {
    STACK_NAMES
        .iter()
        .map(|n| resolve_stack_or_exit(n))
        .collect()
}

/// Usable-space floor the lifetime run ends at (the paper's Figure 5
/// axis limit); deep enough that the failure-era machinery dominates.
const STOP_USABLE: f64 = 0.70;

#[derive(Debug)]
struct Row {
    name: &'static str,
    writes: u64,
    seconds: f64,
    wps: f64,
}

fn measure() -> Vec<Row> {
    stacks()
        .iter()
        .map(|spec| {
            let name = spec.title;
            let mut sim = exp_builder().scheme(spec.kind).build();
            // Benchmark the event spine's dispatch path, not its bypass:
            // with a sink stacked, every emission walks the sink loop.
            // writes_issued must stay bit-identical to the sink-free run
            // (events are observability, not behavior).
            // WLR_BENCH_NOSINK=1 removes the sink to price the bypass.
            if std::env::var("WLR_BENCH_NOSINK").is_err() {
                if let Some(r) = sim.controller_mut().as_reviver_mut() {
                    r.add_sink(Box::new(wl_reviver::NoopSink));
                }
            }
            let start = Instant::now();
            let out = sim.run(StopCondition::UsableBelow(STOP_USABLE));
            let seconds = start.elapsed().as_secs_f64();
            let wps = out.writes_issued as f64 / seconds;
            eprintln!(
                "  {name:<24} {:>12} writes in {seconds:>7.2}s = {wps:>12.0} writes/s",
                out.writes_issued
            );
            Row {
                name,
                writes: out.writes_issued,
                seconds,
                wps,
            }
        })
        .collect()
}

fn stacks_json(rows: &[Row]) -> String {
    let pairs: Vec<(&str, String)> = rows
        .iter()
        .map(|r| {
            let mut fields = String::new();
            write!(
                fields,
                "\"writes_issued\": {}, \"seconds\": {:.3}, \"writes_per_sec\": {:.0}",
                r.writes, r.seconds, r.wps
            )
            .expect("string write");
            (r.name, fields)
        })
        .collect();
    rows_json(&pairs)
}

fn main() {
    handle_list_stacks();
    let out_path = bench_out_path("BENCH_core.json");

    eprintln!(
        "bench_core: {} blocks, endurance {:.0}, seed {}, stop usable<{STOP_USABLE}",
        EXP_BLOCKS,
        EXP_ENDURANCE,
        exp_seed()
    );
    let rows = measure();
    let current = stacks_json(&rows);

    let base = load_baseline(&out_path, &current);
    let mut speedups = String::from("{");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            speedups.push_str(", ");
        }
        let ratio =
            baseline_field(&base.block, r.name, "writes_per_sec").map_or(1.0, |b| r.wps / b);
        write!(speedups, "\"{}\": {:.2}", r.name, ratio).expect("string write");
    }
    speedups.push('}');

    let report = format!(
        "{{\n  \"config\": {{\"blocks\": {EXP_BLOCKS}, \"endurance\": {EXP_ENDURANCE}, \
         \"seed\": {}, \"stop\": \"usable:{STOP_USABLE}\"}},\n  \"baseline\": {},\n  \
         \"current\": {current},\n  \"speedup_vs_baseline\": {speedups}\n}}\n",
        exp_seed(),
        base.block
    );
    write_report(&out_path, &report, base.is_first);
    println!("{report}");
}
