//! Leveling-quality audit — evidence for the paper's methodology claim
//! (§IV): *"WL-Reviver neither compromises nor improves a scheme's
//! wear-leveling efficacy. Instead, it only restores an existent scheme's
//! function."*
//!
//! Two checks:
//!
//! 1. on a healthy chip (no failures possible), wear statistics with and
//!    without the framework are identical per scheme;
//! 2. deep into wear-out, the revived scheme's wear stays close to flat
//!    while the frozen baseline's diverges.
//!
//! ```text
//! cargo run --release -p wlr-bench --bin leveling
//! ```

use wl_reviver::metrics::WearReport;
use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{SimulationBuilder, StopCondition};
use wlr_bench::{exp_builder, exp_seed, print_table, EXP_BLOCKS};
use wlr_trace::Benchmark;

fn wear(builder: SimulationBuilder, stop: StopCondition) -> (WearReport, u64) {
    let mut sim = builder.build();
    sim.run(stop);
    (sim.wear_report(), sim.writes_issued())
}

fn main() {
    println!("Leveling-quality audit (mg workload, CoV 40.87)\n");

    // --- healthy chip: the framework must be invisible ---
    let healthy = |scheme| {
        exp_builder()
            .endurance_mean(1e12)
            .scheme(scheme)
            .workload(Benchmark::Mg.build(EXP_BLOCKS, exp_seed()))
    };
    let budget = StopCondition::Writes(20_000_000);
    let reg = SchemeRegistry::global();
    let mut rows = Vec::new();
    for (name, scheme) in [
        ("ECP6-SG", reg.kind("sg")),
        ("ECP6-SG-WLR", reg.kind("reviver-sg")),
        ("ECP6-SR", reg.kind("sr")),
        ("ECP6-SR-WLR", reg.kind("reviver-sr")),
        ("ECP6-SW", reg.kind("softwear")),
        ("ECP6-SW-WLR", reg.kind("softwear-wlr")),
        ("ECP6-ASG", reg.kind("adaptive-sg")),
        ("ECP6-ASG-WLR", reg.kind("adaptive-sg-wlr")),
    ] {
        let (r, _) = wear(healthy(scheme), budget);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", r.mean),
            format!("{:.4}", r.cov),
            format!("{:.4}", r.gini),
            format!("{:.2}", r.max_over_mean),
        ]);
    }
    print_table(
        "healthy chip, 20M writes: framework must not change leveling",
        &["stack", "mean wear", "wear CoV", "gini", "max/mean"],
        &rows,
    );

    // --- worn chip: revival preserves flatness, freezing destroys it ---
    let worn = |scheme| {
        exp_builder()
            .scheme(scheme)
            .workload(Benchmark::Mg.build(EXP_BLOCKS, exp_seed()))
    };
    let mut rows = Vec::new();
    for (name, scheme) in [
        ("ECP6-SG (freezes)", reg.kind("sg")),
        ("ECP6-SG-WLR", reg.kind("reviver-sg")),
    ] {
        let (r, writes) = wear(worn(scheme), StopCondition::UsableBelow(0.85));
        rows.push(vec![
            name.to_string(),
            writes.to_string(),
            format!("{:.4}", r.cov),
            format!("{:.4}", r.gini),
            format!("{:.2}", r.max_over_mean),
        ]);
    }
    print_table(
        "run to 15% space loss: wear flatness under failures",
        &["stack", "writes", "wear CoV", "gini", "max/mean"],
        &rows,
    );
    println!("Expected: the two healthy rows per scheme are near-identical (the");
    println!("framework is pass-through without failures); under failures the");
    println!("revived stack sustains far more writes at comparable flatness.");
}
