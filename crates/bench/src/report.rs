//! Shared plumbing for the `BENCH_*.json` perf reports.
//!
//! Every perf-tracking binary follows the same baseline discipline:
//!
//! * first run (no report file): record the measured numbers as both
//!   `baseline` and `current`;
//! * later runs: preserve the committed `baseline` block verbatim,
//!   replace `current`, and report per-row ratios against the baseline.
//!
//! This module hosts the pieces they all need — the brace-balanced
//! baseline extractor, the numeric field scraper, the
//! `WLR_BENCH_OUT`/`WLR_BENCH_RESET` knobs, and small env parsing — so
//! each binary only formats its own rows.

/// Output path for a report: `WLR_BENCH_OUT` or the binary's default.
pub fn bench_out_path(default: &str) -> String {
    std::env::var("WLR_BENCH_OUT").unwrap_or_else(|_| default.to_string())
}

/// Whether `WLR_BENCH_RESET=1` asked for a fresh baseline.
pub fn bench_reset() -> bool {
    std::env::var("WLR_BENCH_RESET").is_ok_and(|v| v == "1")
}

/// Parses an integer env knob, falling back to `default` when unset or
/// malformed.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Extracts the `"baseline": { ... }` object (brace-balanced) from a
/// previous report, if present.
pub fn extract_baseline(json: &str) -> Option<String> {
    let start = json.find("\"baseline\":")? + "\"baseline\":".len();
    let open = start + json[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Pulls the numeric `"<field>": <x>` that follows `"<name>":` out of a
/// baseline block.
pub fn baseline_field(baseline: &str, name: &str, field: &str) -> Option<f64> {
    let at = baseline.find(&format!("\"{name}\":"))?;
    let tail = &baseline[at..];
    let key = format!("\"{field}\":");
    let at = tail.find(&key)? + key.len();
    let tail = tail[at..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The baseline block to report against, plus whether this run created it.
#[derive(Debug)]
pub struct Baseline {
    /// The baseline JSON object (preserved from disk, or `current`).
    pub block: String,
    /// Whether no prior baseline existed (or a reset was requested).
    pub is_first: bool,
}

/// Loads the committed baseline from `out_path`, honoring the reset knob;
/// falls back to `current` (making this run the new baseline).
pub fn load_baseline(out_path: &str, current: &str) -> Baseline {
    let prior = if bench_reset() {
        None
    } else {
        std::fs::read_to_string(out_path)
            .ok()
            .as_deref()
            .and_then(extract_baseline)
    };
    let is_first = prior.is_none();
    Baseline {
        block: prior.unwrap_or_else(|| current.to_string()),
        is_first,
    }
}

/// Writes the report and prints the created/updated status line.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_report(out_path: &str, report: &str, is_first: bool) {
    std::fs::write(out_path, report).expect("write bench report");
    eprintln!(
        "{} {out_path} ({})",
        if is_first { "created" } else { "updated" },
        if is_first {
            "baseline recorded from this tree"
        } else {
            "baseline preserved"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "config": {"blocks": 16384},
  "baseline": {"A": {"writes_per_sec": 125000, "p99": 3}, "B": {"writes_per_sec": 8.5e4}},
  "current": {"A": {"writes_per_sec": 150000, "p99": 2}}
}"#;

    #[test]
    fn baseline_extraction_is_brace_balanced() {
        let b = extract_baseline(REPORT).unwrap();
        assert!(b.starts_with('{') && b.ends_with('}'));
        assert!(b.contains("125000"));
        assert!(!b.contains("150000"), "must not leak into current");
    }

    #[test]
    fn field_scraper_reads_named_rows() {
        let b = extract_baseline(REPORT).unwrap();
        assert_eq!(baseline_field(&b, "A", "writes_per_sec"), Some(125000.0));
        assert_eq!(baseline_field(&b, "A", "p99"), Some(3.0));
        assert_eq!(baseline_field(&b, "B", "writes_per_sec"), Some(8.5e4));
        assert_eq!(baseline_field(&b, "C", "writes_per_sec"), None);
        assert_eq!(baseline_field(&b, "A", "missing"), None);
    }

    #[test]
    fn missing_baseline_yields_none() {
        assert_eq!(extract_baseline("{\"current\": {}}"), None);
        assert_eq!(extract_baseline(""), None);
    }

    #[test]
    fn env_u64_falls_back() {
        assert_eq!(env_u64("WLR_TEST_SURELY_UNSET_KNOB", 7), 7);
    }
}
