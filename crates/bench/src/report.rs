//! Shared plumbing for the `BENCH_*.json` perf reports.
//!
//! Every perf-tracking binary follows the same baseline discipline:
//!
//! * first run (no report file): record the measured numbers as both
//!   `baseline` and `current`;
//! * later runs: preserve the committed `baseline` block verbatim,
//!   replace `current`, and report per-row ratios against the baseline.
//!
//! This module hosts the pieces they all need — the brace-balanced
//! baseline extractor, the numeric field scraper, the
//! `WLR_BENCH_OUT`/`WLR_BENCH_RESET` knobs, and small env parsing — so
//! each binary only formats its own rows.

use wl_reviver::registry::{SchemeRegistry, StackSpec};

/// Output path for a report: `WLR_BENCH_OUT` or the binary's default.
pub fn bench_out_path(default: &str) -> String {
    std::env::var("WLR_BENCH_OUT").unwrap_or_else(|_| default.to_string())
}

/// Formats named rows into the one-level `{"name": {fields}}` object all
/// bench reports use. Each entry is `(row name, inner field list)` where
/// the field list is the `"k": v, …` body without braces. Shared by
/// `bench_core`, `robustness`, and friends so the row-map shape cannot
/// drift between binaries again.
pub fn rows_json<N: AsRef<str>>(rows: &[(N, String)]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{");
    for (i, (name, fields)) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        write!(s, "\"{}\": {{{}}}", name.as_ref(), fields).expect("string write");
    }
    s.push('}');
    s
}

/// Resolves a comma-separated stack filter through the scheme registry,
/// exiting with the valid names on an unknown one — env filters like
/// `WLR_CRASH_STACKS` and `WLR_FLEET_SCHEMES` must never silently no-op
/// on a typo.
pub fn resolve_stacks_or_exit(csv: &str) -> Vec<&'static StackSpec> {
    match SchemeRegistry::global().resolve_list(csv) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Resolves a single stack name through the registry, exiting with the
/// valid names on an unknown one.
pub fn resolve_stack_or_exit(name: &str) -> &'static StackSpec {
    match SchemeRegistry::global().resolve(name) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Handles a `--list-stacks` argument: prints every registered stack
/// (name, title, flags, description) and exits. Call first in `main`.
pub fn handle_list_stacks() {
    if std::env::args().any(|a| a == "--list-stacks") {
        for s in SchemeRegistry::global().iter() {
            println!(
                "{:<16} {:<32} {:<9} {}",
                s.name,
                s.title,
                if s.revivable { "revivable" } else { "bare" },
                s.description
            );
        }
        std::process::exit(0);
    }
}

/// Whether `WLR_BENCH_RESET=1` asked for a fresh baseline.
pub fn bench_reset() -> bool {
    std::env::var("WLR_BENCH_RESET").is_ok_and(|v| v == "1")
}

/// Parses an integer env knob, falling back to `default` when unset or
/// malformed.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Parses a float env knob, falling back to `default` when unset or
/// malformed.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Extracts the `"baseline": { ... }` object (brace-balanced) from a
/// previous report, if present.
pub fn extract_baseline(json: &str) -> Option<String> {
    extract_object(json, "baseline")
}

/// Extracts the brace-balanced `"<key>": { ... }` object from a report.
pub fn extract_object(json: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let open = start + json[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Pulls the numeric `"<field>": <x>` that follows `"<name>":` out of a
/// baseline block.
pub fn baseline_field(baseline: &str, name: &str, field: &str) -> Option<f64> {
    let at = baseline.find(&format!("\"{name}\":"))?;
    let tail = &baseline[at..];
    let key = format!("\"{field}\":");
    let at = tail.find(&key)? + key.len();
    let tail = tail[at..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Splits a one-level JSON object of `"name": { ... }` rows into
/// `(name, row object)` pairs, in order. Only meant for the row maps the
/// bench binaries emit themselves (every value is an object, and no
/// string inside a row contains a brace).
pub fn object_rows(block: &str) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    let mut i = match block.find('{') {
        Some(p) => p + 1,
        None => return rows,
    };
    while let Some(q0) = block[i..].find('"') {
        let kstart = i + q0 + 1;
        let Some(q1) = block[kstart..].find('"') else {
            break;
        };
        let key = block[kstart..kstart + q1].to_string();
        let mut j = kstart + q1 + 1;
        let Some(c) = block[j..].find(':') else { break };
        j += c + 1;
        let Some(o) = block[j..].find('{') else { break };
        let open = j + o;
        let mut depth = 0usize;
        let mut end = None;
        for (k, ch) in block[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(open + k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        rows.push((key, block[open..=end].to_string()));
        i = end + 1;
    }
    rows
}

/// Splits a row object into its top-level `(field, raw value)` pairs,
/// brace-aware so nested objects stay intact as single values.
pub fn object_fields(row: &str) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    let Some(open) = row.find('{') else {
        return fields;
    };
    let mut i = open + 1;
    while let Some(q0) = row[i..].find('"') {
        let kstart = i + q0 + 1;
        let Some(q1) = row[kstart..].find('"') else {
            break;
        };
        let key = row[kstart..kstart + q1].to_string();
        let mut j = kstart + q1 + 1;
        let Some(c) = row[j..].find(':') else { break };
        j += c + 1;
        // Value runs to the next top-level comma or the closing brace.
        let mut depth = 0usize;
        let mut end = None;
        for (k, ch) in row[j..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' if depth > 0 => depth -= 1,
                ',' | '}' if depth == 0 => {
                    end = Some(j + k);
                    break;
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        fields.push((key, row[j..end].trim().to_string()));
        i = end + usize::from(row.as_bytes()[end] == b',');
        if row.as_bytes()[end] == b'}' {
            break;
        }
    }
    fields
}

/// Backfills fields the prior row is missing from the current row: the
/// prior row's measured numbers stay verbatim, but fields added to the
/// row format since the baseline was recorded (e.g. the `revival` object
/// that early `banks_1..16` baselines lacked) are appended at current
/// values so every row carries the same shape.
pub fn backfill_row(prior: &str, current: &str) -> String {
    let prior_fields = object_fields(prior);
    let missing: Vec<(String, String)> = object_fields(current)
        .into_iter()
        .filter(|(k, _)| !prior_fields.iter().any(|(pk, _)| pk == k))
        .collect();
    if missing.is_empty() {
        return prior.to_string();
    }
    let mut s = prior.trim_end().to_string();
    let closed = s.pop() == Some('}');
    debug_assert!(closed, "row must be a brace-balanced object: {prior}");
    let mut s = s.trim_end().to_string();
    for (k, v) in missing {
        if !s.ends_with('{') {
            s.push_str(", ");
        }
        s.push('"');
        s.push_str(&k);
        s.push_str("\": ");
        s.push_str(&v);
    }
    s.push('}');
    s
}

/// Merges a prior baseline into the current row set: rows the prior
/// baseline already covers keep their baseline numbers (backfilling any
/// fields added to the row format since — see [`backfill_row`]), rows
/// new to this run (a widened sweep) are baselined at their current
/// values, and rows that vanished from the sweep are dropped.
pub fn merge_baseline_rows(prior: &str, current: &str) -> String {
    let prior_rows = object_rows(prior);
    let mut s = String::from("{");
    for (i, (key, cur)) in object_rows(current).into_iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let val = match prior_rows.iter().find(|(k, _)| *k == key) {
            Some((_, v)) => backfill_row(v, &cur),
            None => cur,
        };
        s.push('"');
        s.push_str(&key);
        s.push_str("\": ");
        s.push_str(&val);
    }
    s.push('}');
    s
}

fn strip_ws(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// The baseline block to report against, plus whether this run created it.
#[derive(Debug)]
pub struct Baseline {
    /// The baseline JSON object (preserved from disk, or `current`).
    pub block: String,
    /// Whether no prior baseline existed (or a reset was requested).
    pub is_first: bool,
}

/// Loads the committed baseline from `out_path`, honoring the reset knob;
/// falls back to `current` (making this run the new baseline).
pub fn load_baseline(out_path: &str, current: &str) -> Baseline {
    let prior = if bench_reset() {
        None
    } else {
        std::fs::read_to_string(out_path)
            .ok()
            .as_deref()
            .and_then(extract_baseline)
    };
    let is_first = prior.is_none();
    Baseline {
        block: prior.unwrap_or_else(|| current.to_string()),
        is_first,
    }
}

/// Config-aware baseline loader: a prior report whose `config` block
/// matches `config` (whitespace-insensitively) keeps its baseline,
/// merged row-wise so rows new to a widened sweep self-baseline; a
/// config change — a different workload identity — re-baselines
/// everything, because numbers measured under another workload are not
/// comparable.
pub fn load_baseline_with_config(out_path: &str, current: &str, config: &str) -> Baseline {
    let prior = if bench_reset() {
        None
    } else {
        std::fs::read_to_string(out_path).ok()
    };
    let prior_baseline = prior.as_deref().and_then(|p| {
        let same = extract_object(p, "config").is_some_and(|c| strip_ws(&c) == strip_ws(config));
        if same {
            extract_baseline(p)
        } else {
            None
        }
    });
    let is_first = prior_baseline.is_none();
    Baseline {
        block: prior_baseline
            .map_or_else(|| current.to_string(), |b| merge_baseline_rows(&b, current)),
        is_first,
    }
}

/// Writes the report and prints the created/updated status line.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_report(out_path: &str, report: &str, is_first: bool) {
    std::fs::write(out_path, report).expect("write bench report");
    eprintln!(
        "{} {out_path} ({})",
        if is_first { "created" } else { "updated" },
        if is_first {
            "baseline recorded from this tree"
        } else {
            "baseline preserved"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "config": {"blocks": 16384},
  "baseline": {"A": {"writes_per_sec": 125000, "p99": 3}, "B": {"writes_per_sec": 8.5e4}},
  "current": {"A": {"writes_per_sec": 150000, "p99": 2}}
}"#;

    #[test]
    fn baseline_extraction_is_brace_balanced() {
        let b = extract_baseline(REPORT).unwrap();
        assert!(b.starts_with('{') && b.ends_with('}'));
        assert!(b.contains("125000"));
        assert!(!b.contains("150000"), "must not leak into current");
    }

    #[test]
    fn field_scraper_reads_named_rows() {
        let b = extract_baseline(REPORT).unwrap();
        assert_eq!(baseline_field(&b, "A", "writes_per_sec"), Some(125000.0));
        assert_eq!(baseline_field(&b, "A", "p99"), Some(3.0));
        assert_eq!(baseline_field(&b, "B", "writes_per_sec"), Some(8.5e4));
        assert_eq!(baseline_field(&b, "C", "writes_per_sec"), None);
        assert_eq!(baseline_field(&b, "A", "missing"), None);
    }

    #[test]
    fn missing_baseline_yields_none() {
        assert_eq!(extract_baseline("{\"current\": {}}"), None);
        assert_eq!(extract_baseline(""), None);
    }

    #[test]
    fn env_u64_falls_back() {
        assert_eq!(env_u64("WLR_TEST_SURELY_UNSET_KNOB", 7), 7);
    }

    #[test]
    fn object_rows_splits_in_order() {
        let rows = object_rows(r#"{"a": {"x": 1}, "b": {"y": {"z": 2}}}"#);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], ("a".into(), "{\"x\": 1}".into()));
        assert_eq!(rows[1].0, "b");
        assert!(rows[1].1.contains("\"z\": 2"));
    }

    #[test]
    fn object_fields_splits_shallowly() {
        let fields = object_fields(r#"{"a": 1, "b": {"c": 2, "d": 3}, "e": 4.5}"#);
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0], ("a".into(), "1".into()));
        assert_eq!(fields[1], ("b".into(), "{\"c\": 2, \"d\": 3}".into()));
        assert_eq!(fields[2], ("e".into(), "4.5".into()));
    }

    #[test]
    fn backfill_appends_only_missing_fields() {
        let prior = r#"{"writes_per_sec": 100, "p99_ticks": 3}"#;
        let current = r#"{"writes_per_sec": 150, "p99_ticks": 2, "revival": {"links": 7}}"#;
        let filled = backfill_row(prior, current);
        assert_eq!(
            filled,
            r#"{"writes_per_sec": 100, "p99_ticks": 3, "revival": {"links": 7}}"#
        );
        // Nothing missing → verbatim.
        assert_eq!(backfill_row(current, prior), current);
    }

    #[test]
    fn merge_backfills_fields_missing_from_prior_rows() {
        let prior = r#"{"banks_1": {"writes_per_sec": 100}}"#;
        let current = r#"{"banks_1": {"writes_per_sec": 150, "revival": {"links": 3}}}"#;
        let merged = merge_baseline_rows(prior, current);
        assert_eq!(
            baseline_field(&merged, "banks_1", "writes_per_sec"),
            Some(100.0),
            "measured numbers stay from the prior baseline"
        );
        assert!(
            merged.contains("\"revival\": {\"links\": 3}"),
            "new-format fields are backfilled: {merged}"
        );
    }

    #[test]
    fn merge_keeps_prior_rows_and_baselines_new_ones() {
        let prior = r#"{"banks_1": {"writes_per_sec": 100}, "banks_2": {"writes_per_sec": 200}}"#;
        let current = r#"{"banks_1": {"writes_per_sec": 150}, "banks_4": {"writes_per_sec": 400}}"#;
        let merged = merge_baseline_rows(prior, current);
        assert_eq!(
            baseline_field(&merged, "banks_1", "writes_per_sec"),
            Some(100.0)
        );
        assert_eq!(
            baseline_field(&merged, "banks_4", "writes_per_sec"),
            Some(400.0)
        );
        assert_eq!(
            baseline_field(&merged, "banks_2", "writes_per_sec"),
            None,
            "rows dropped from the sweep leave the baseline"
        );
    }

    #[test]
    fn config_change_rebaselines() {
        let dir = std::env::temp_dir().join("wlr_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_cfg.json");
        let path = path.to_str().unwrap();
        std::fs::write(
            path,
            r#"{
  "config": {"blocks": 16384, "requests": 100},
  "baseline": {"banks_1": {"writes_per_sec": 100}},
  "current": {"banks_1": {"writes_per_sec": 100}}
}"#,
        )
        .unwrap();
        let current = r#"{"banks_1": {"writes_per_sec": 250}}"#;
        let same =
            load_baseline_with_config(path, current, r#"{"blocks": 16384, "requests": 100}"#);
        assert!(!same.is_first);
        assert_eq!(
            baseline_field(&same.block, "banks_1", "writes_per_sec"),
            Some(100.0)
        );
        let changed =
            load_baseline_with_config(path, current, r#"{"blocks": 16384, "requests": 999}"#);
        assert!(changed.is_first, "different workload identity re-baselines");
        assert_eq!(
            baseline_field(&changed.block, "banks_1", "writes_per_sec"),
            Some(250.0)
        );
        std::fs::remove_file(path).ok();
    }
}
