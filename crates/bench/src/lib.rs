//! Experiment harness for the WL-Reviver reproduction.
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 for the
//! index), plus Criterion microbenchmarks. This library hosts what they
//! share: the scaled experiment configuration, parallel curve running,
//! and plain-text table/series printing.
//!
//! # Scaling
//!
//! The paper simulates a 1 GB chip with 10⁸-write cell endurance; running
//! that write-by-write is ~10¹⁵ writes per configuration. The harness
//! scales the chip to [`EXP_BLOCKS`] blocks and the endurance to
//! [`EXP_ENDURANCE`], and scales Start-Gap's ψ with
//! [`scaled_gap_interval`] so that the *rotations-per-lifetime* ratio —
//! which governs how much leveling a block's lifetime allows — matches
//! the paper's regime. All reported quantities are normalized (percent of
//! space, writes on a shared axis), so curve shapes, orderings and
//! crossovers are comparable; absolute write counts are not (and are not
//! meant to be). See `EXPERIMENTS.md`.

#![warn(missing_docs)]

use std::sync::Mutex;
use wl_reviver::metrics::TimeSeries;
use wl_reviver::sim::{Outcome, Simulation, SimulationBuilder, StopCondition};

/// Chip size (blocks) used by the figure experiments: 2¹⁴ blocks = 1 MB.
pub const EXP_BLOCKS: u64 = 1 << 14;

/// Mean cell endurance used by the figure experiments.
pub const EXP_ENDURANCE: f64 = 1e4;

/// Base experiment seed (override with the `WLR_SEED` env variable).
pub const EXP_SEED: u64 = 42;

/// Start-Gap ψ (and Security Refresh interval) preserving the paper's
/// rotations-per-lifetime ratio at the scaled geometry:
/// `ψ_scaled = endurance / (r · blocks)` with
/// `r = 10⁸ / (2²⁴ · 100) ≈ 0.0596` from the paper's configuration.
pub fn scaled_gap_interval(blocks: u64, endurance: f64) -> u64 {
    const PAPER_RATIO: f64 = 1e8 / ((1u64 << 24) as f64 * 100.0);
    ((endurance / (PAPER_RATIO * blocks as f64)).round() as u64).clamp(1, 100)
}

/// The experiment seed (env-overridable for replication studies).
pub fn exp_seed() -> u64 {
    std::env::var("WLR_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(EXP_SEED)
}

/// A simulation builder pre-configured with the scaled experiment
/// defaults; binaries override scheme/workload per configuration.
pub fn exp_builder() -> SimulationBuilder {
    let psi = scaled_gap_interval(EXP_BLOCKS, EXP_ENDURANCE);
    Simulation::builder()
        .num_blocks(EXP_BLOCKS)
        .endurance_mean(EXP_ENDURANCE)
        .gap_interval(psi)
        .sr_refresh_interval(psi)
        .seed(exp_seed())
}

/// Result of one named curve run.
#[derive(Debug)]
pub struct Curve {
    /// Configuration label (paper legend name).
    pub label: String,
    /// Recorded time series.
    pub series: TimeSeries,
    /// Final outcome.
    pub outcome: Outcome,
}

/// Runs one configuration to `stop`, returning its curve.
pub fn run_curve(label: &str, mut sim: Simulation, stop: StopCondition) -> Curve {
    let outcome = sim.run(stop);
    Curve {
        label: label.to_string(),
        series: sim.series().clone(),
        outcome,
    }
}

/// Runs several labelled configurations in parallel (one OS thread each)
/// and returns the curves in input order.
pub fn run_parallel(
    configs: Vec<(String, Box<dyn FnOnce() -> Curve + Send>)>,
) -> Vec<Curve> {
    let n = configs.len();
    let results: Mutex<Vec<Option<Curve>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for (i, (label, job)) in configs.into_iter().enumerate() {
            let results = &results;
            scope.spawn(move || {
                eprintln!("  running {label} …");
                let curve = job();
                results.lock().expect("no panics hold the lock")[i] = Some(curve);
            });
        }
    });
    results
        .into_inner()
        .expect("threads joined")
        .into_iter()
        .map(|c| c.expect("every job ran"))
        .collect()
}

/// Prints one curve as a `(writes, metric)` column block, sampled down to
/// at most `max_rows` evenly spaced rows.
pub fn print_series(curve: &Curve, metric: impl Fn(&wl_reviver::metrics::SamplePoint) -> f64, max_rows: usize) {
    println!("## {}", curve.label);
    println!("{:>14} {:>9}", "writes", "value");
    let points = curve.series.points();
    let step = (points.len() / max_rows.max(1)).max(1);
    for (i, p) in points.iter().enumerate() {
        if i % step == 0 || i == points.len() - 1 {
            println!("{:>14} {:>8.2}%", p.writes, metric(p) * 100.0);
        }
    }
    println!();
}

/// Writes an aligned table: `header` then rows of cells.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_psi_matches_paper_ratio() {
        // At the paper's own geometry the formula returns the paper's ψ.
        assert_eq!(scaled_gap_interval(1 << 24, 1e8), 100);
        // At the harness default it shrinks proportionally.
        let psi = scaled_gap_interval(EXP_BLOCKS, EXP_ENDURANCE);
        assert!((5..=20).contains(&psi), "scaled ψ {psi}");
    }

    #[test]
    fn exp_builder_builds() {
        let sim = exp_builder().build();
        assert_eq!(sim.geometry().num_blocks(), EXP_BLOCKS);
    }

    #[test]
    fn parallel_preserves_order() {
        let configs: Vec<(String, Box<dyn FnOnce() -> Curve + Send>)> = (0..4)
            .map(|i| {
                let label = format!("c{i}");
                let l2 = label.clone();
                (
                    label,
                    Box::new(move || Curve {
                        label: l2,
                        series: TimeSeries::new(),
                        outcome: Outcome {
                            writes_issued: i,
                            reason: wl_reviver::sim::StopReason::HardCap,
                            survival: 1.0,
                            usable: 1.0,
                        },
                    }) as Box<dyn FnOnce() -> Curve + Send>,
                )
            })
            .collect();
        let curves = run_parallel(configs);
        for (i, c) in curves.iter().enumerate() {
            assert_eq!(c.label, format!("c{i}"));
            assert_eq!(c.outcome.writes_issued, i as u64);
        }
    }
}
