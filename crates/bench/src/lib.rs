//! Experiment harness for the WL-Reviver reproduction.
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 for the
//! index), plus Criterion microbenchmarks. This library hosts what they
//! share: the scaled experiment configuration, parallel curve running,
//! and plain-text table/series printing.
//!
//! # Scaling
//!
//! The paper simulates a 1 GB chip with 10⁸-write cell endurance; running
//! that write-by-write is ~10¹⁵ writes per configuration. The harness
//! scales the chip to [`EXP_BLOCKS`] blocks and the endurance to
//! [`EXP_ENDURANCE`], and scales Start-Gap's ψ with
//! [`scaled_gap_interval`] so that the *rotations-per-lifetime* ratio —
//! which governs how much leveling a block's lifetime allows — matches
//! the paper's regime. All reported quantities are normalized (percent of
//! space, writes on a shared axis), so curve shapes, orderings and
//! crossovers are comparable; absolute write counts are not (and are not
//! meant to be). See `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod report;
pub mod timing;

use std::sync::Arc;
use wl_reviver::metrics::TimeSeries;
use wl_reviver::sim::{Outcome, Simulation, SimulationBuilder, StopCondition};
use wlr_trace::Workload;

pub use wlr_base::pool::run_pooled;

/// Chip size (blocks) used by the figure experiments: 2¹⁴ blocks = 1 MB.
pub const EXP_BLOCKS: u64 = 1 << 14;

/// Mean cell endurance used by the figure experiments.
pub const EXP_ENDURANCE: f64 = 1e4;

/// Base experiment seed (override with the `WLR_SEED` env variable).
pub const EXP_SEED: u64 = 42;

/// Start-Gap ψ (and Security Refresh interval) preserving the paper's
/// rotations-per-lifetime ratio at the scaled geometry:
/// `ψ_scaled = endurance / (r · blocks)` with
/// `r = 10⁸ / (2²⁴ · 100) ≈ 0.0596` from the paper's configuration.
pub fn scaled_gap_interval(blocks: u64, endurance: f64) -> u64 {
    const PAPER_RATIO: f64 = 1e8 / ((1u64 << 24) as f64 * 100.0);
    ((endurance / (PAPER_RATIO * blocks as f64)).round() as u64).clamp(1, 100)
}

/// The experiment seed (env-overridable for replication studies).
pub fn exp_seed() -> u64 {
    std::env::var("WLR_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(EXP_SEED)
}

/// A simulation builder pre-configured with the scaled experiment
/// defaults; binaries override scheme/workload per configuration.
pub fn exp_builder() -> SimulationBuilder {
    let psi = scaled_gap_interval(EXP_BLOCKS, EXP_ENDURANCE);
    Simulation::builder()
        .num_blocks(EXP_BLOCKS)
        .endurance_mean(EXP_ENDURANCE)
        .gap_interval(psi)
        .sr_refresh_interval(psi)
        .seed(exp_seed())
}

/// A pooled unit of work producing a `T` (the harness's jobs own their
/// state, hence `'static`; the borrowing variant lives in
/// [`wlr_base::pool`]).
pub type PooledJob<T> = wlr_base::pool::PooledJob<'static, T>;

/// A seed-parameterized curve factory, for multi-seed sweeps.
pub type SeededCurveFn = Box<dyn Fn(u64) -> Curve + Send + Sync>;

/// Result of one named curve run.
#[derive(Debug)]
pub struct Curve {
    /// Configuration label (paper legend name).
    pub label: String,
    /// Recorded time series.
    pub series: TimeSeries,
    /// Final outcome.
    pub outcome: Outcome,
}

/// Runs one configuration to `stop`, returning its curve.
pub fn run_curve(label: &str, mut sim: Simulation, stop: StopCondition) -> Curve {
    let outcome = sim.run(stop);
    Curve {
        label: label.to_string(),
        series: sim.series().clone(),
        outcome,
    }
}

/// Runs several labelled configurations through the shared worker pool
/// and returns the curves in input order.
pub fn run_parallel(configs: Vec<(String, PooledJob<Curve>)>) -> Vec<Curve> {
    let jobs = configs
        .into_iter()
        .map(|(label, job)| {
            Box::new(move || {
                eprintln!("  running {label} …");
                job()
            }) as PooledJob<Curve>
        })
        .collect();
    run_pooled(jobs)
}

/// One configuration run across several replicate seeds.
#[derive(Debug)]
pub struct ReplicatedCurve {
    /// Configuration label (without the seed suffix).
    pub label: String,
    /// One curve per seed, in seed order.
    pub replicates: Vec<Curve>,
}

impl ReplicatedCurve {
    /// `(mean, min, max)` of a per-replicate statistic.
    pub fn stats(&self, f: impl Fn(&Curve) -> f64) -> (f64, f64, f64) {
        let xs: Vec<f64> = self.replicates.iter().map(f).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (mean, min, max)
    }

    /// `(mean, min, max)` of the final write count (the lifetime metric).
    pub fn writes_stats(&self) -> (f64, f64, f64) {
        self.stats(|c| c.outcome.writes_issued as f64)
    }

    /// Population standard deviation of a per-replicate statistic.
    pub fn stddev(&self, f: impl Fn(&Curve) -> f64) -> f64 {
        let xs: Vec<f64> = self.replicates.iter().map(f).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
    }
}

/// Replicate seeds for multi-seed sweeps: `exp_seed() + r` for
/// `r in 0..WLR_REPLICATES` (default 1).
pub fn replicate_seeds() -> Vec<u64> {
    let reps: u64 = std::env::var("WLR_REPLICATES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    (0..reps).map(|r| exp_seed() + r).collect()
}

/// Runs every labelled configuration once per seed through the shared
/// worker pool (all `configs × seeds` jobs interleave across the pool),
/// aggregating the replicates per configuration in input order.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_replicated(
    configs: Vec<(String, SeededCurveFn)>,
    seeds: &[u64],
) -> Vec<ReplicatedCurve> {
    assert!(!seeds.is_empty(), "need at least one replicate seed");
    let mut labels = Vec::with_capacity(configs.len());
    let mut jobs: Vec<PooledJob<Curve>> = Vec::new();
    for (label, factory) in configs {
        let factory = Arc::new(factory);
        for &seed in seeds {
            let factory = Arc::clone(&factory);
            let label = label.clone();
            jobs.push(Box::new(move || {
                eprintln!("  running {label} [seed {seed}] …");
                factory(seed)
            }));
        }
        labels.push(label);
    }
    let mut curves = run_pooled(jobs).into_iter();
    labels
        .into_iter()
        .map(|label| ReplicatedCurve {
            label,
            replicates: seeds
                .iter()
                .map(|_| curves.next().expect("one curve per job"))
                .collect(),
        })
        .collect()
}

/// A fork-shared replicate sweep: one configuration warmed once, then
/// one forked future per replicate seed.
///
/// [`run_replicated`] replays the whole run per seed — including the
/// long fault-free warmup every replicate shares. This variant runs the
/// warmup once per configuration, takes a [`Simulation::snapshot`], and
/// forks each replicate from it, diverging only the workload stream.
///
/// The semantics differ from per-seed reruns: replicates share the
/// device's endurance draws and the entire pre-snapshot history, so the
/// reported spread measures sensitivity to the *post-warmup request
/// stream*, not to the device lottery (see EXPERIMENTS.md).
pub struct ForkSweep {
    /// Builds the configuration's simulation at the base seed.
    pub build: Box<dyn Fn() -> Simulation + Send>,
    /// How far the shared warmup runs before the snapshot. Must trip
    /// strictly before `stop`, or every future ends immediately.
    pub warmup: StopCondition,
    /// Stop condition for the forked futures.
    pub stop: StopCondition,
    /// Builds the divergent workload for one replicate seed.
    pub reseed: Box<dyn Fn(u64) -> Box<dyn Workload> + Send>,
}

/// The warmup point for a fork-shared sweep ending at `stop`: half the
/// write budget, half the dead fraction, or halfway down to the usable
/// floor — always strictly before the stop, so forked futures have room
/// to diverge.
pub fn fork_warmup_for(stop: StopCondition) -> StopCondition {
    match stop {
        StopCondition::Writes(n) => StopCondition::Writes(n / 2),
        StopCondition::DeadFraction(f) => StopCondition::DeadFraction(f / 2.0),
        StopCondition::UsableBelow(u) => StopCondition::UsableBelow((1.0 + u) / 2.0),
    }
}

/// Runs every configuration's shared warmup on the worker pool, then its
/// replicate futures forked from the snapshot, aggregating per
/// configuration in input order (the fork-based counterpart of
/// [`run_replicated`]).
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_replicated_forked(
    configs: Vec<(String, ForkSweep)>,
    seeds: &[u64],
) -> Vec<ReplicatedCurve> {
    assert!(!seeds.is_empty(), "need at least one replicate seed");
    let mut labels = Vec::with_capacity(configs.len());
    let mut jobs: Vec<PooledJob<Vec<Curve>>> = Vec::new();
    for (label, sweep) in configs {
        labels.push(label.clone());
        let seeds = seeds.to_vec();
        jobs.push(Box::new(move || {
            eprintln!(
                "  warming {label} once, forking {} replicate{} …",
                seeds.len(),
                if seeds.len() == 1 { "" } else { "s" }
            );
            let mut warm = (sweep.build)();
            warm.run(sweep.warmup);
            let snap = warm.snapshot();
            seeds
                .iter()
                .map(|&seed| {
                    let mut sim = Simulation::fork(&snap);
                    // The canonical seed continues the *captured* stream
                    // (bit-identical to the unbroken single run, keeping
                    // the recorded results/ tables byte-comparable); only
                    // extra replicates get a fresh divergent stream.
                    if seed != exp_seed() {
                        sim.replace_workload((sweep.reseed)(seed));
                    }
                    let outcome = sim.run(sweep.stop);
                    Curve {
                        label: format!("{label}/s{seed}"),
                        series: sim.series().clone(),
                        outcome,
                    }
                })
                .collect()
        }));
    }
    run_pooled(jobs)
        .into_iter()
        .zip(labels)
        .map(|(replicates, label)| ReplicatedCurve { label, replicates })
        .collect()
}

/// Prints one curve as a `(writes, metric)` column block, sampled down to
/// at most `max_rows` evenly spaced rows.
pub fn print_series(
    curve: &Curve,
    metric: impl Fn(&wl_reviver::metrics::SamplePoint) -> f64,
    max_rows: usize,
) {
    println!("## {}", curve.label);
    println!("{:>14} {:>9}", "writes", "value");
    let points = curve.series.points();
    let step = (points.len() / max_rows.max(1)).max(1);
    for (i, p) in points.iter().enumerate() {
        if i % step == 0 || i == points.len() - 1 {
            println!("{:>14} {:>8.2}%", p.writes, metric(p) * 100.0);
        }
    }
    println!();
}

/// Writes an aligned table: `header` then rows of cells.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_psi_matches_paper_ratio() {
        // At the paper's own geometry the formula returns the paper's ψ.
        assert_eq!(scaled_gap_interval(1 << 24, 1e8), 100);
        // At the harness default it shrinks proportionally.
        let psi = scaled_gap_interval(EXP_BLOCKS, EXP_ENDURANCE);
        assert!((5..=20).contains(&psi), "scaled ψ {psi}");
    }

    #[test]
    fn exp_builder_builds() {
        let sim = exp_builder().build();
        assert_eq!(sim.geometry().num_blocks(), EXP_BLOCKS);
    }

    #[test]
    fn parallel_preserves_order() {
        let configs: Vec<(String, PooledJob<Curve>)> = (0..4)
            .map(|i| {
                let label = format!("c{i}");
                let l2 = label.clone();
                (
                    label,
                    Box::new(move || Curve {
                        label: l2,
                        series: TimeSeries::new(),
                        outcome: Outcome {
                            writes_issued: i,
                            reason: wl_reviver::sim::StopReason::HardCap,
                            survival: 1.0,
                            usable: 1.0,
                        },
                    }) as PooledJob<Curve>,
                )
            })
            .collect();
        let curves = run_parallel(configs);
        for (i, c) in curves.iter().enumerate() {
            assert_eq!(c.label, format!("c{i}"));
            assert_eq!(c.outcome.writes_issued, i as u64);
        }
    }

    #[test]
    fn pooled_handles_more_jobs_than_threads() {
        // 64 jobs on a bounded pool: all must run, in input order.
        let jobs: Vec<PooledJob<u64>> = (0..64u64)
            .map(|i| Box::new(move || i * i) as PooledJob<u64>)
            .collect();
        let out = run_pooled(jobs);
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    fn dummy_curve(label: &str, writes: u64) -> Curve {
        Curve {
            label: label.to_string(),
            series: TimeSeries::new(),
            outcome: Outcome {
                writes_issued: writes,
                reason: wl_reviver::sim::StopReason::HardCap,
                survival: 1.0,
                usable: 1.0,
            },
        }
    }

    #[test]
    fn replicated_groups_by_config_and_aggregates() {
        let configs: Vec<(String, SeededCurveFn)> = (0..3u64)
            .map(|i| {
                (
                    format!("r{i}"),
                    Box::new(move |seed: u64| dummy_curve("x", 100 * i + seed)) as SeededCurveFn,
                )
            })
            .collect();
        let reps = run_replicated(configs, &[10, 20, 30]);
        assert_eq!(reps.len(), 3);
        for (i, rep) in reps.iter().enumerate() {
            assert_eq!(rep.label, format!("r{i}"));
            assert_eq!(rep.replicates.len(), 3);
            let base = 100.0 * i as f64;
            let (mean, min, max) = rep.writes_stats();
            assert_eq!(mean, base + 20.0);
            assert_eq!(min, base + 10.0);
            assert_eq!(max, base + 30.0);
        }
    }

    #[test]
    fn replicate_seeds_defaults_to_one() {
        // WLR_REPLICATES unset in the test environment.
        if std::env::var("WLR_REPLICATES").is_err() {
            assert_eq!(replicate_seeds(), vec![exp_seed()]);
        }
    }
}
