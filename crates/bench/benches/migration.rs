//! Microbenchmark: sustained write throughput through the revived
//! controller on a healthy chip, including the scheme's migrations — the
//! framework's steady-state overhead.

use std::hint::black_box;
use wl_reviver::controller::Controller;
use wl_reviver::reviver::RevivedController;
use wlr_base::{Geometry, Pa};
use wlr_bench::timing::bench;
use wlr_pcm::{Ecp, PcmDevice};
use wlr_wl::{RandomizerKind, SecurityRefresh, StartGap};

const N: u64 = 1 << 14;

fn controller_sg(psi: u64) -> RevivedController {
    let geo = Geometry::builder().num_blocks(N).build().unwrap();
    let device = PcmDevice::builder(geo)
        .extra_blocks(1)
        .endurance_mean(1e12)
        .ecc(Box::new(Ecp::ecp6()))
        .build();
    let wl = StartGap::builder(N)
        .gap_interval(psi)
        .randomizer(RandomizerKind::Feistel { seed: 1 })
        .build();
    RevivedController::builder(device, Box::new(wl)).build()
}

fn controller_sr(interval: u64) -> RevivedController {
    let geo = Geometry::builder().num_blocks(N).build().unwrap();
    let device = PcmDevice::builder(geo)
        .endurance_mean(1e12)
        .ecc(Box::new(Ecp::ecp6()))
        .build();
    let wl = SecurityRefresh::builder(N)
        .region_blocks(1 << 12)
        .refresh_interval(interval)
        .seed(1)
        .build();
    RevivedController::builder(device, Box::new(wl)).build()
}

fn main() {
    for psi in [10u64, 100] {
        let mut ctl = controller_sg(psi);
        let mut i = 0u64;
        bench(
            &format!("writes_with_migrations/start_gap_psi{psi}"),
            || {
                i += 1;
                black_box(ctl.write(Pa::new(i % N), i))
            },
        );
    }

    let mut ctl = controller_sr(100);
    let mut i = 0u64;
    bench("writes_with_migrations/security_refresh_int100", || {
        i += 1;
        black_box(ctl.write(Pa::new(i % N), i))
    });
}
