//! Microbenchmark: the failed-block access path — healthy access vs
//! uncached redirection (pointer + shadow) vs cached redirection, the
//! simulation-level counterpart of Table II's access-time metric.

use std::hint::black_box;
use wl_reviver::controller::{Controller, WriteResult};
use wl_reviver::reviver::RevivedController;
use wlr_base::{Geometry, Pa, PageId};
use wlr_bench::timing::bench;
use wlr_pcm::{Ecp, PcmDevice};
use wlr_wl::{RandomizerKind, StartGap};

const N: u64 = 1 << 12;

fn controller(cache: Option<usize>) -> (RevivedController, Pa) {
    let geo = Geometry::builder().num_blocks(N).build().unwrap();
    let device = PcmDevice::builder(geo)
        .extra_blocks(1)
        .endurance_mean(1e12)
        .ecc(Box::new(Ecp::ecp6()))
        .build();
    let wl = StartGap::builder(N)
        .gap_interval(1_000_000_000) // no migrations during the benchmark
        .randomizer(RandomizerKind::Feistel { seed: 1 })
        .build();
    let mut b = RevivedController::builder(device, Box::new(wl));
    if let Some(bytes) = cache {
        b = b.cache_bytes(bytes);
    }
    let mut ctl = b.build();
    // Reserve a page of spares, then fail one block and link it.
    ctl.on_page_retired(PageId::new(0));
    let pa = Pa::new(200);
    let da = ctl.wear_leveler().map(pa);
    ctl.inject_dead(da);
    assert_eq!(ctl.write(pa, 1), WriteResult::Ok);
    (ctl, pa)
}

fn main() {
    let (mut ctl, _) = controller(None);
    let healthy = Pa::new(300);
    bench("access/healthy_read", || black_box(ctl.read(healthy)));

    let (mut ctl, failed) = controller(None);
    bench("access/failed_read_uncached", || {
        black_box(ctl.read(failed))
    });

    let (mut ctl, failed) = controller(Some(32 * 1024));
    ctl.read(failed); // warm the cache
    bench("access/failed_read_cached", || black_box(ctl.read(failed)));

    let (mut ctl, failed) = controller(None);
    let mut i = 0u64;
    bench("access/failed_write_uncached", || {
        i += 1;
        black_box(ctl.write(failed, i))
    });
}
