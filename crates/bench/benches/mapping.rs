//! Microbenchmark: PA→DA mapping throughput of the wear-leveling schemes
//! and their randomizers — the operation on every memory access, which is
//! why the paper insists on algebraic functions instead of tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wlr_base::Pa;
use wlr_wl::{
    AddressRandomizer, FeistelRandomizer, RandomizerKind, SecurityRefresh, StartGap,
    TableRandomizer, WearLeveler,
};

const N: u64 = 1 << 16;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("map");

    let sg_feistel = StartGap::builder(N)
        .randomizer(RandomizerKind::Feistel { seed: 1 })
        .build();
    group.bench_function("start_gap_feistel", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 12345) % N;
            black_box(sg_feistel.map(Pa::new(i)))
        })
    });

    let sg_table = StartGap::builder(N)
        .randomizer(RandomizerKind::Table { seed: 1 })
        .build();
    group.bench_function("start_gap_table", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 12345) % N;
            black_box(sg_table.map(Pa::new(i)))
        })
    });

    let sr = SecurityRefresh::builder(N).region_blocks(1 << 12).build();
    group.bench_function("security_refresh", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 12345) % N;
            black_box(sr.map(Pa::new(i)))
        })
    });

    group.finish();

    let mut group = c.benchmark_group("randomizer");
    let feistel = FeistelRandomizer::new(N, 7);
    group.bench_function("feistel_forward", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 12345) % N;
            black_box(feistel.forward(i))
        })
    });
    let table = TableRandomizer::new(N, 7);
    group.bench_function("table_forward", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 12345) % N;
            black_box(table.forward(i))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
