//! Microbenchmark: PA→DA mapping throughput of the wear-leveling schemes
//! and their randomizers — the operation on every memory access, which is
//! why the paper insists on algebraic functions instead of tables.

use std::hint::black_box;
use wlr_base::Pa;
use wlr_bench::timing::bench;
use wlr_wl::{
    AddressRandomizer, FeistelRandomizer, RandomizerKind, SecurityRefresh, StartGap,
    TableRandomizer, WearLeveler,
};

const N: u64 = 1 << 16;

fn main() {
    let sg_feistel = StartGap::builder(N)
        .randomizer(RandomizerKind::Feistel { seed: 1 })
        .build();
    let mut i = 0u64;
    bench("map/start_gap_feistel", || {
        i = (i + 12345) % N;
        black_box(sg_feistel.map(Pa::new(i)))
    });

    let sg_table = StartGap::builder(N)
        .randomizer(RandomizerKind::Table { seed: 1 })
        .build();
    let mut i = 0u64;
    bench("map/start_gap_table", || {
        i = (i + 12345) % N;
        black_box(sg_table.map(Pa::new(i)))
    });

    let sr = SecurityRefresh::builder(N).region_blocks(1 << 12).build();
    let mut i = 0u64;
    bench("map/security_refresh", || {
        i = (i + 12345) % N;
        black_box(sr.map(Pa::new(i)))
    });

    let feistel = FeistelRandomizer::new(N, 7);
    let mut i = 0u64;
    bench("randomizer/feistel_forward", || {
        i = (i + 12345) % N;
        black_box(feistel.forward(i))
    });

    let table = TableRandomizer::new(N, 7);
    let mut i = 0u64;
    bench("randomizer/table_forward", || {
        i = (i + 12345) % N;
        black_box(table.forward(i))
    });
}
