//! Microbenchmark: workload generation and trace I/O throughput — the
//! simulator's front end, which must stay far off the critical path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wlr_trace::{Benchmark, TraceWorkload, TraceWriter, UniformWorkload, Workload, ZipfWorkload};

fn bench_workload(c: &mut Criterion) {
    let blocks = 1u64 << 16;

    let mut group = c.benchmark_group("next_write");
    group.throughput(Throughput::Elements(1));
    let mut uniform = UniformWorkload::new(blocks, 1);
    group.bench_function("uniform", |b| b.iter(|| black_box(uniform.next_write())));
    let mut zipf = ZipfWorkload::new(blocks, 1.1, 1);
    group.bench_function("zipf", |b| b.iter(|| black_box(zipf.next_write())));
    let mut mg = Benchmark::Mg.build(blocks, 1);
    group.bench_function("cov_targeted_mg", |b| b.iter(|| black_box(mg.next_write())));
    group.finish();

    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    group.bench_function("cov_targeted_build_64k", |b| {
        b.iter(|| black_box(Benchmark::Ocean.build(blocks, 3)))
    });
    group.finish();

    let mut group = c.benchmark_group("trace_io");
    group.sample_size(10);
    let dir = std::env::temp_dir().join("wltr-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.wltr");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("write_100k_records", |b| {
        b.iter(|| {
            let mut src = Benchmark::Ocean.build(blocks, 5);
            let mut w = TraceWriter::create(&path, blocks).unwrap();
            w.record_from(&mut src, 100_000).unwrap();
            w.finish().unwrap();
        })
    });
    group.bench_function("load_100k_records", |b| {
        b.iter(|| black_box(TraceWorkload::load(&path).unwrap()))
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
