//! Microbenchmark: workload generation and trace I/O throughput — the
//! simulator's front end, which must stay far off the critical path.

use std::hint::black_box;
use wlr_bench::timing::bench;
use wlr_trace::{Benchmark, TraceWorkload, TraceWriter, UniformWorkload, Workload, ZipfWorkload};

fn main() {
    let blocks = 1u64 << 16;

    let mut uniform = UniformWorkload::new(blocks, 1);
    bench("next_write/uniform", || black_box(uniform.next_write()));
    let mut zipf = ZipfWorkload::new(blocks, 1.1, 1);
    bench("next_write/zipf", || black_box(zipf.next_write()));
    let mut mg = Benchmark::Mg.build(blocks, 1);
    bench("next_write/cov_targeted_mg", || black_box(mg.next_write()));

    bench("construction/cov_targeted_build_64k", || {
        black_box(Benchmark::Ocean.build(blocks, 3))
    });

    let dir = std::env::temp_dir().join("wltr-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.wltr");
    bench("trace_io/write_100k_records", || {
        let mut src = Benchmark::Ocean.build(blocks, 5);
        let mut w = TraceWriter::create(&path, blocks).unwrap();
        w.record_from(&mut src, 100_000).unwrap();
        w.finish().unwrap();
    });
    bench("trace_io/load_100k_records", || {
        black_box(TraceWorkload::load(&path).unwrap())
    });
    std::fs::remove_file(&path).ok();
}
