//! Microbenchmark: end-to-end simulated writes per second through the
//! full stack (workload → OS → controller → device), the number that
//! bounds every figure's wall-clock cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wl_reviver::sim::{SchemeKind, Simulation, StopCondition};
use wlr_trace::Benchmark;

fn sim(scheme: SchemeKind) -> Simulation {
    let blocks = 1 << 14;
    Simulation::builder()
        .num_blocks(blocks)
        .endurance_mean(1e9) // effectively healthy for the benchmark window
        .gap_interval(10)
        .scheme(scheme)
        .seed(1)
        .workload(Benchmark::Ocean.build(blocks, 1))
        .sample_interval(u64::MAX / 2)
        .build()
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_writes");
    group.throughput(Throughput::Elements(10_000));
    group.sample_size(20);

    for (name, scheme) in [
        ("ecc_only", SchemeKind::EccOnly),
        ("start_gap", SchemeKind::StartGapOnly),
        ("reviver_sg", SchemeKind::ReviverStartGap),
        ("reviver_sr", SchemeKind::ReviverSecurityRefresh),
        ("lls", SchemeKind::Lls),
    ] {
        let mut s = sim(scheme);
        let mut target = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                target += 10_000;
                s.run(StopCondition::Writes(target))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
