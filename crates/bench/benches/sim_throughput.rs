//! Microbenchmark: end-to-end simulated writes per second through the
//! full stack (workload → OS → controller → device), the number that
//! bounds every figure's wall-clock cost.

use wl_reviver::sim::{SchemeKind, Simulation, StopCondition};
use wlr_bench::timing::bench;
use wlr_trace::Benchmark;

fn sim(scheme: SchemeKind) -> Simulation {
    let blocks = 1 << 14;
    Simulation::builder()
        .num_blocks(blocks)
        .endurance_mean(1e9) // effectively healthy for the benchmark window
        .gap_interval(10)
        .scheme(scheme)
        .seed(1)
        .workload(Benchmark::Ocean.build(blocks, 1))
        .sample_interval(u64::MAX / 2)
        .build()
}

fn main() {
    for (name, scheme) in [
        ("ecc_only", SchemeKind::EccOnly),
        ("start_gap", SchemeKind::StartGapOnly),
        ("reviver_sg", SchemeKind::ReviverStartGap),
        ("reviver_sr", SchemeKind::ReviverSecurityRefresh),
        ("lls", SchemeKind::Lls),
    ] {
        let mut s = sim(scheme);
        let mut target = 0u64;
        // Each iteration advances the same simulation by a 10k-write slab,
        // so the per-iteration cost is 10_000 simulated writes.
        let m = bench(&format!("sim_writes/{name}"), || {
            target += 10_000;
            s.run(StopCondition::Writes(target))
        });
        println!(
            "{:<44} {:>14.0} simulated writes/s",
            format!("sim_writes/{name} (per write)"),
            m.per_sec * 10_000.0
        );
    }
}
