//! The outcome of an access-error exception.

use wlr_base::{Pa, PageId};

/// What the OS did in response to a reported access error (paper §III-A:
//  "a standard procedure for OS to handle the exception is to exclude the
//  page associated with the error from its allocation pool").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Retirement {
    /// The physical page taken out of service. Its PAs are now
    /// software-unreachable — from WL-Reviver's point of view, freshly
    /// reserved virtual spare space.
    pub retired: PageId,
    /// The replacement physical page the application data moved to, if the
    /// free pool had one. `None` means the pool was dry and the
    /// application's footprint shrank by one page.
    pub replacement: Option<PageId>,
    /// Block copies the OS performs to relocate the page's data,
    /// `(from, to)` in PA space. Empty when there is no replacement. The
    /// caller executes these against the (revived) memory controller so
    /// that the copy traffic wears the PCM and is access-accounted.
    pub copies: Vec<(Pa, Pa)>,
}

impl Retirement {
    /// Number of blocks relocated.
    pub fn copied_blocks(&self) -> usize {
        self.copies.len()
    }
}
