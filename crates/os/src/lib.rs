//! Operating-system memory-management model.
//!
//! WL-Reviver's headline constraint (§III-A) is that it demands *no OS
//! support beyond what DRAM-era systems already have*: read/write commands
//! plus an access-error exception, where the standard OS response is to
//! retire the page containing the error and never touch it again (the
//! HP Memory Quarantine behaviour the paper cites). This crate models
//! exactly that OS:
//!
//! * an application-page → physical-page table ([`page_table`]), so that a
//!   retired page's *application* data transparently relocates while its
//!   *physical* addresses become software-unreachable — the reservation
//!   side-channel WL-Reviver exploits;
//! * a free-page pool and the retirement procedure
//!   ([`retirement::Retirement`]): allocate a replacement if one is free,
//!   emit the block-copy work list (the caller performs the copies so PCM
//!   accesses are accounted), or shrink the application's footprint when
//!   the pool is dry;
//! * usable-space accounting, which is the y-axis of the paper's
//!   Figures 7 and 8.
//!
//! # Example
//!
//! ```
//! use wlr_base::{AppAddr, Geometry, Pa};
//! use wlr_os::OsMemory;
//!
//! let geo = Geometry::builder().num_blocks(256).build()?; // 4 pages
//! let mut os = OsMemory::builder(geo).reserve_pages(1).build();
//! assert_eq!(os.app_pages(), 3);
//!
//! // Initially the identity mapping.
//! assert_eq!(os.translate(AppAddr::new(10)), Some(Pa::new(10)));
//!
//! // A failure report retires the page and relocates it to the reserve.
//! let r = os.handle_failure(Pa::new(10)).expect("first report retires");
//! assert!(r.replacement.is_some());
//! assert_ne!(os.translate(AppAddr::new(10)), Some(Pa::new(10)));
//! assert_eq!(os.retired_pages(), 1);
//! # Ok::<(), wlr_base::geometry::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod page_table;
pub mod retirement;

pub use page_table::{OsMemory, OsMemoryBuilder};
pub use retirement::Retirement;
