//! Application-page → physical-page mapping with retirement.

use crate::retirement::Retirement;
use wlr_base::rng::SplitMix64;
use wlr_base::{AppAddr, Geometry, Pa, PageId};

/// Builder for [`OsMemory`]; see [`OsMemory::builder`].
#[derive(Debug, Clone)]
pub struct OsMemoryBuilder {
    geometry: Geometry,
    reserve_pages: u64,
}

impl OsMemoryBuilder {
    /// Number of physical pages initially held back as the OS free pool
    /// (default 0: retirements immediately shrink the application space).
    pub fn reserve_pages(mut self, pages: u64) -> Self {
        self.reserve_pages = pages;
        self
    }

    /// Constructs the OS model.
    ///
    /// # Panics
    ///
    /// Panics if the reserve consumes every physical page.
    pub fn build(self) -> OsMemory {
        let num_pages = self.geometry.num_pages();
        assert!(
            self.reserve_pages < num_pages,
            "reserve ({}) must leave at least one application page of {num_pages}",
            self.reserve_pages
        );
        let app_pages = num_pages - self.reserve_pages;
        let table: Vec<Option<PageId>> = (0..app_pages).map(|p| Some(PageId::new(p))).collect();
        let free: Vec<PageId> = (app_pages..num_pages).rev().map(PageId::new).collect();
        let bpp = self.geometry.blocks_per_page();
        OsMemory {
            geometry: self.geometry,
            bpp_split: bpp
                .is_power_of_two()
                .then(|| (bpp.trailing_zeros(), bpp - 1)),
            table,
            free,
            retired: vec![false; num_pages as usize],
            retired_count: 0,
            mapped_list: (0..app_pages).collect(),
            mapped_pos: (0..app_pages as usize).map(Some).collect(),
            failure_reports: 0,
            retire_log: Vec::new(),
        }
    }
}

/// The modeled operating system's view of memory.
///
/// Only two entry points matter to the rest of the stack:
/// [`OsMemory::translate`] (software address → PA) and
/// [`OsMemory::handle_failure`] (the access-error exception handler).
/// Everything else is metrics.
#[derive(Debug, Clone)]
pub struct OsMemory {
    geometry: Geometry,
    /// `(shift, mask)` for the blocks-per-page split, precomputed when the
    /// ratio is a power of two (it is at every supported geometry) to keep
    /// 64-bit division off the translation fast path.
    bpp_split: Option<(u32, u64)>,
    /// Application page → physical page (None once dropped).
    table: Vec<Option<PageId>>,
    /// Free physical pages (LIFO for determinism).
    free: Vec<PageId>,
    /// Physical pages that have been retired.
    retired: Vec<bool>,
    retired_count: u64,
    /// Compact list of still-mapped application pages, for O(1)
    /// deterministic redirection of writes to dropped pages.
    mapped_list: Vec<u64>,
    /// app page -> index in `mapped_list` (None once dropped).
    mapped_pos: Vec<Option<usize>>,
    failure_reports: u64,
    /// Physical pages in the order they retired. Replacement choice
    /// (`free.pop()`) and page-drop compaction (`swap_remove`) depend
    /// only on this order, so replaying it through [`Self::retire_page`]
    /// on a fresh instance reconstructs the whole table — the restart
    /// path of the service daemon.
    retire_log: Vec<PageId>,
}

impl OsMemory {
    /// Starts building an OS model over `geometry`.
    pub fn builder(geometry: Geometry) -> OsMemoryBuilder {
        OsMemoryBuilder {
            geometry,
            reserve_pages: 0,
        }
    }

    /// The geometry in force.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Number of application pages (the software-visible footprint at
    /// boot; shrinks only when the free pool is dry at retirement time).
    pub fn app_pages(&self) -> u64 {
        self.table.len() as u64
    }

    /// Number of application blocks addressable by the workload.
    pub fn app_blocks(&self) -> u64 {
        self.app_pages() * self.geometry.blocks_per_page()
    }

    /// `(page, in-page offset)` of a block index — shift/mask when the
    /// blocks-per-page ratio allows, division otherwise.
    #[inline]
    fn split(&self, idx: u64) -> (u64, u64) {
        match self.bpp_split {
            Some((shift, mask)) => (idx >> shift, idx & mask),
            None => {
                let bpp = self.geometry.blocks_per_page();
                (idx / bpp, idx % bpp)
            }
        }
    }

    /// Translates an application block address to its current PA, or
    /// `None` if the containing application page has been dropped.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the application space.
    #[inline]
    pub fn translate(&self, addr: AppAddr) -> Option<Pa> {
        let bpp = self.geometry.blocks_per_page();
        let (page, offset) = self.split(addr.index());
        assert!(
            page < self.app_pages(),
            "{addr} outside application space ({} pages)",
            self.app_pages()
        );
        self.table[page as usize].map(|phys| Pa::new(phys.index() * bpp + offset))
    }

    /// Like [`Self::translate`], but deterministically redirects accesses
    /// to dropped pages onto a surviving page (same in-page offset) —
    /// modeling the OS having compacted that data elsewhere. Returns
    /// `None` only when no application pages survive.
    #[inline]
    pub fn translate_or_redirect(&self, addr: AppAddr) -> Option<Pa> {
        if let Some(pa) = self.translate(addr) {
            return Some(pa);
        }
        if self.mapped_list.is_empty() {
            return None;
        }
        let bpp = self.geometry.blocks_per_page();
        let (page, offset) = self.split(addr.index());
        let pick = SplitMix64::mix(0x0D1E_C7ED, page) % self.mapped_list.len() as u64;
        let target_app = self.mapped_list[pick as usize];
        let phys = self.table[target_app as usize].expect("mapped_list entry must be mapped");
        Some(Pa::new(phys.index() * bpp + offset))
    }

    /// The physical page containing `pa`.
    pub fn page_of(&self, pa: Pa) -> PageId {
        self.geometry.page_of(pa)
    }

    /// Whether physical page `page` has been retired.
    pub fn is_retired(&self, page: PageId) -> bool {
        self.retired[page.as_usize()]
    }

    /// Handles an access-error exception for `pa` (paper §III-A).
    ///
    /// Retires the containing physical page, relocates the application
    /// page to a pool page if one is free (returning the block-copy work
    /// list), or drops the application page when the pool is dry. Returns
    /// `None` if the page was already retired (a stale report — nothing to
    /// do) or if `pa`'s page is not currently backing any application page
    /// (the error surfaced on an already-reserved page, which software by
    /// assumption never accesses).
    pub fn handle_failure(&mut self, pa: Pa) -> Option<Retirement> {
        let phys = self.geometry.page_of(pa);
        let outcome = self.retire_phys(phys);
        if outcome.is_some() {
            self.failure_reports += 1;
        }
        outcome
    }

    /// Explicitly retires physical page `page` at a component's request —
    /// the *additional OS support* LLS depends on and WL-Reviver avoids
    /// (§II). Not counted as a failure report. Returns `None` if the page
    /// is already retired or backs no application page.
    pub fn retire_page(&mut self, page: PageId) -> Option<Retirement> {
        self.retire_phys(page)
    }

    fn retire_phys(&mut self, phys: PageId) -> Option<Retirement> {
        if self.retired[phys.as_usize()] {
            return None;
        }
        // Find which application page currently maps to this physical page.
        let app = self.table.iter().position(|&t| t == Some(phys))?;
        self.retired[phys.as_usize()] = true;
        self.retired_count += 1;
        self.retire_log.push(phys);

        let bpp = self.geometry.blocks_per_page();
        let replacement = self.free.pop();
        let copies = match replacement {
            Some(new_phys) => {
                self.table[app] = Some(new_phys);
                let old_base = phys.index() * bpp;
                let new_base = new_phys.index() * bpp;
                (0..bpp)
                    .map(|i| (Pa::new(old_base + i), Pa::new(new_base + i)))
                    .collect()
            }
            None => {
                // Pool dry: the application page is dropped and the
                // footprint shrinks.
                self.table[app] = None;
                if let Some(pos) = self.mapped_pos[app].take() {
                    self.mapped_list.swap_remove(pos);
                    if pos < self.mapped_list.len() {
                        let moved = self.mapped_list[pos];
                        self.mapped_pos[moved as usize] = Some(pos);
                    }
                }
                Vec::new()
            }
        };
        Some(Retirement {
            retired: phys,
            replacement,
            copies,
        })
    }

    /// Number of retired physical pages.
    pub fn retired_pages(&self) -> u64 {
        self.retired_count
    }

    /// Fraction of physical pages not retired — the paper's
    /// "software-usable space" once controller-level reservations are also
    /// subtracted by the caller.
    pub fn usable_fraction(&self) -> f64 {
        let total = self.geometry.num_pages() as f64;
        (total - self.retired_count as f64) / total
    }

    /// Number of application pages still mapped.
    pub fn mapped_app_pages(&self) -> u64 {
        self.mapped_list.len() as u64
    }

    /// Physical pages currently in the free pool.
    pub fn free_pool(&self) -> u64 {
        self.free.len() as u64
    }

    /// Total access-error exceptions the OS has handled (the paper counts
    /// on these being rare: one per page acquisition, not one per block
    /// failure).
    pub fn failure_reports(&self) -> u64 {
        self.failure_reports
    }

    /// Retired physical pages in retirement order. Unlike
    /// [`Self::retired_iter`] (the unordered persistent bitmap), this
    /// preserves the temporal order the free pool was consumed in, which
    /// is what a replay needs to rebuild the app→phys table exactly:
    /// feed each entry back through [`Self::retire_page`] on a fresh
    /// instance.
    pub fn retirement_log(&self) -> &[PageId] {
        &self.retire_log
    }

    /// Iterator over retired physical pages (the persistent bitmap
    /// WL-Reviver reloads at boot, §III-A).
    pub fn retired_iter(&self) -> impl Iterator<Item = PageId> + '_ {
        self.retired
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .map(|(i, _)| PageId::new(i as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_os(reserve: u64) -> OsMemory {
        // 8 pages of 64 blocks.
        let geo = Geometry::builder().num_blocks(512).build().unwrap();
        OsMemory::builder(geo).reserve_pages(reserve).build()
    }

    #[test]
    fn identity_mapping_at_boot() {
        let os = small_os(0);
        assert_eq!(os.app_pages(), 8);
        assert_eq!(os.app_blocks(), 512);
        for a in [0u64, 63, 64, 511] {
            assert_eq!(os.translate(AppAddr::new(a)), Some(Pa::new(a)));
        }
        assert_eq!(os.free_pool(), 0);
        assert_eq!(os.usable_fraction(), 1.0);
    }

    #[test]
    fn reserve_shrinks_app_space() {
        let os = small_os(3);
        assert_eq!(os.app_pages(), 5);
        assert_eq!(os.free_pool(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one application page")]
    fn reserve_cannot_eat_everything() {
        small_os(8);
    }

    #[test]
    fn retirement_with_replacement_relocates() {
        let mut os = small_os(2);
        let r = os.handle_failure(Pa::new(70)).expect("should retire");
        assert_eq!(r.retired, PageId::new(1));
        let replacement = r.replacement.expect("pool had pages");
        assert_eq!(r.copies.len(), 64);
        assert_eq!(r.copies[0].0, Pa::new(64));
        assert_eq!(r.copies[0].1, os.geometry().page_base(replacement));
        // App page 1 now translates into the replacement page.
        let pa = os.translate(AppAddr::new(70)).unwrap();
        assert_eq!(os.geometry().page_of(pa), replacement);
        assert_eq!(os.retired_pages(), 1);
        assert_eq!(os.free_pool(), 1);
        assert_eq!(os.failure_reports(), 1);
    }

    #[test]
    fn retirement_without_pool_drops_page() {
        let mut os = small_os(0);
        let r = os.handle_failure(Pa::new(70)).expect("should retire");
        assert_eq!(r.replacement, None);
        assert!(r.copies.is_empty());
        assert_eq!(os.translate(AppAddr::new(70)), None);
        assert_eq!(os.mapped_app_pages(), 7);
        // Redirection still lands somewhere valid, at the same offset.
        let pa = os.translate_or_redirect(AppAddr::new(70)).unwrap();
        assert_eq!(pa.index() % 64, 6);
        // And deterministically.
        assert_eq!(os.translate_or_redirect(AppAddr::new(70)), Some(pa));
    }

    #[test]
    fn duplicate_report_is_ignored() {
        let mut os = small_os(1);
        let first = os.handle_failure(Pa::new(0));
        assert!(first.is_some());
        let again = os.handle_failure(Pa::new(1)); // same page 0
        assert!(again.is_none());
        assert_eq!(os.retired_pages(), 1);
        assert_eq!(os.failure_reports(), 1);
    }

    #[test]
    fn report_on_reserved_page_is_ignored() {
        // Page 7 is in the free pool (reserve 1) and backs no app page.
        let mut os = small_os(1);
        assert!(os.handle_failure(Pa::new(7 * 64)).is_none());
        assert_eq!(os.retired_pages(), 0);
    }

    #[test]
    fn replacement_page_can_itself_retire() {
        let mut os = small_os(1);
        let r1 = os.handle_failure(Pa::new(0)).unwrap();
        let repl = r1.replacement.unwrap();
        // Fail the replacement; pool is now dry, app page 0 drops.
        let repl_pa = os.geometry().page_base(repl);
        let r2 = os.handle_failure(repl_pa).unwrap();
        assert_eq!(r2.retired, repl);
        assert_eq!(r2.replacement, None);
        assert_eq!(os.translate(AppAddr::new(0)), None);
        assert_eq!(os.retired_pages(), 2);
    }

    #[test]
    fn usable_fraction_tracks_retirements() {
        let mut os = small_os(0);
        os.handle_failure(Pa::new(0)).unwrap();
        os.handle_failure(Pa::new(64)).unwrap();
        assert!((os.usable_fraction() - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn redirect_exhausts_gracefully() {
        let mut os = small_os(0);
        for p in 0..8 {
            os.handle_failure(Pa::new(p * 64)).unwrap();
        }
        assert_eq!(os.mapped_app_pages(), 0);
        assert_eq!(os.translate_or_redirect(AppAddr::new(0)), None);
    }

    #[test]
    fn retired_iter_matches_reports() {
        let mut os = small_os(0);
        os.handle_failure(Pa::new(130)).unwrap(); // page 2
        os.handle_failure(Pa::new(450)).unwrap(); // page 7
        let retired: Vec<PageId> = os.retired_iter().collect();
        assert_eq!(retired, vec![PageId::new(2), PageId::new(7)]);
        assert!(os.is_retired(PageId::new(2)));
        assert!(!os.is_retired(PageId::new(3)));
    }

    #[test]
    #[should_panic(expected = "outside application space")]
    fn translate_out_of_range_panics() {
        small_os(0).translate(AppAddr::new(512));
    }

    #[test]
    fn retirement_log_replay_reconstructs_the_table() {
        let mut rng = wlr_base::rng::Rng::stream(0x9A6E, 2);
        for _ in 0..12 {
            let reserve = rng.gen_range(4);
            let geo = Geometry::builder().num_blocks(512).build().unwrap();
            let mut live = OsMemory::builder(geo).reserve_pages(reserve).build();
            for _ in 0..rng.gen_range(16) {
                live.handle_failure(Pa::new(rng.gen_range(512)));
            }
            let mut replayed = OsMemory::builder(geo).reserve_pages(reserve).build();
            for &page in live.retirement_log() {
                replayed.retire_page(page);
            }
            assert_eq!(replayed.retired_pages(), live.retired_pages());
            assert_eq!(replayed.free_pool(), live.free_pool());
            assert_eq!(replayed.mapped_app_pages(), live.mapped_app_pages());
            for app in 0..live.app_pages() {
                let addr = AppAddr::new(app * 64);
                assert_eq!(replayed.translate(addr), live.translate(addr));
                assert_eq!(
                    replayed.translate_or_redirect(addr),
                    live.translate_or_redirect(addr)
                );
            }
            assert_eq!(replayed.retirement_log(), live.retirement_log());
        }
    }

    mod properties {
        use super::*;
        use wlr_base::rng::Rng;

        /// Any retirement sequence keeps the table consistent: mapped
        /// app pages point at distinct, unretired physical pages, and
        /// the accounting identities hold.
        #[test]
        fn retirement_sequences_keep_invariants() {
            let mut rng = Rng::stream(0x9A6E, 0);
            for _ in 0..12 {
                let reserve = rng.gen_range(4);
                let geo = Geometry::builder().num_blocks(512).build().unwrap();
                let mut os = OsMemory::builder(geo).reserve_pages(reserve).build();
                for _ in 0..rng.gen_range(64) {
                    os.handle_failure(Pa::new(rng.gen_range(512)));
                    // Identities after every step:
                    let mut seen = std::collections::HashSet::new();
                    let mut mapped = 0;
                    for app in 0..os.app_pages() {
                        if let Some(pa0) = os.translate(AppAddr::new(app * 64)) {
                            let phys = os.geometry().page_of(pa0);
                            assert!(!os.is_retired(phys), "app page on retired phys");
                            assert!(seen.insert(phys), "two app pages share a phys page");
                            mapped += 1;
                        }
                    }
                    assert_eq!(mapped, os.mapped_app_pages());
                    // Pages are conserved: mapped + free + retired = total.
                    assert_eq!(
                        os.mapped_app_pages() + os.free_pool() + os.retired_pages(),
                        os.geometry().num_pages(),
                        "page conservation violated"
                    );
                }
            }
        }

        /// Redirection is deterministic and always lands on a mapped
        /// page at the same in-page offset.
        #[test]
        fn redirection_is_stable() {
            let mut rng = Rng::stream(0x9A6E, 1);
            for _ in 0..32 {
                let geo = Geometry::builder().num_blocks(512).build().unwrap();
                let mut os = OsMemory::builder(geo).build();
                for _ in 0..rng.gen_range(7) {
                    os.retire_page(PageId::new(rng.gen_range(8)));
                }
                let addr = rng.gen_range(512);
                let a = os.translate_or_redirect(AppAddr::new(addr));
                let b = os.translate_or_redirect(AppAddr::new(addr));
                assert_eq!(a, b);
                if let Some(pa) = a {
                    assert_eq!(pa.index() % 64, addr % 64);
                    assert!(!os.is_retired(os.geometry().page_of(pa)));
                }
            }
        }
    }

    #[test]
    fn redirected_writes_keep_offsets_stable() {
        // Hot block at offset 5 of page 3 stays at offset 5 wherever it
        // lands, so hot data stays hot after compaction.
        let mut os = small_os(0);
        os.handle_failure(Pa::new(3 * 64)).unwrap();
        let pa = os.translate_or_redirect(AppAddr::new(3 * 64 + 5)).unwrap();
        assert_eq!(pa.index() % 64, 5);
    }
}
