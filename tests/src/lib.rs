//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only hosts
//! utilities they share (scenario builders, invariant walkers).

#![warn(missing_docs)]

pub mod scenario;
