//! Scenario builders shared by the integration tests.

use wl_reviver::sim::{SchemeKind, Simulation, SimulationBuilder};
use wlr_trace::{Benchmark, CovTargetedWorkload, SpatialMode};

/// Standard small rig: 2¹⁰ blocks, scaled endurance, invariant checking
/// and the integrity oracle enabled.
pub fn checked_sim(scheme: SchemeKind, seed: u64) -> SimulationBuilder {
    Simulation::builder()
        .num_blocks(1 << 10)
        .endurance_mean(1_500.0)
        .gap_interval(10)
        .sr_refresh_interval(10)
        .scheme(scheme)
        .seed(seed)
        .sample_interval(2_000)
        .verify_integrity(true)
        .check_invariants(true)
}

/// Performance-shaped rig: 2¹² blocks, no oracle overhead.
pub fn fast_sim(scheme: SchemeKind, seed: u64) -> SimulationBuilder {
    Simulation::builder()
        .num_blocks(1 << 12)
        .endurance_mean(2_000.0)
        .gap_interval(8)
        .sr_refresh_interval(8)
        .scheme(scheme)
        .seed(seed)
        .sample_interval(10_000)
}

/// A benchmark workload sized for an app space of `blocks`.
pub fn bench_workload(bench: Benchmark, blocks: u64, seed: u64) -> CovTargetedWorkload {
    bench.build(blocks, seed)
}

/// A raw CoV-targeted workload.
pub fn cov_workload(blocks: u64, cov: f64, seed: u64) -> CovTargetedWorkload {
    CovTargetedWorkload::new(blocks, cov, SpatialMode::Clustered { run_blocks: 64 }, seed)
}
