//! Paper-scale smoke test: instantiate the full 1 GB geometry (2²⁴
//! blocks, 10⁸-write endurance, ψ = 100 — the paper's exact setup) and
//! drive enough traffic to prove the stack holds at that size.
//!
//! Ignored by default (hundreds of MB of simulated device state); run
//! with `cargo test -p wlr-tests --test paper_scale -- --ignored`.

use wl_reviver::sim::{SchemeKind, Simulation, StopCondition};
use wlr_trace::Benchmark;

#[test]
#[ignore = "paper-scale geometry: large memory footprint and minutes of runtime"]
fn one_gigabyte_chip_runs() {
    let blocks = 1u64 << 24; // 1 GB of 64 B blocks
    let mut sim = Simulation::builder()
        .num_blocks(blocks)
        .endurance_mean(1e8)
        .gap_interval(100)
        .scheme(SchemeKind::ReviverStartGap)
        .workload(Benchmark::Ocean.build(blocks, 42))
        .seed(42)
        .sample_interval(5_000_000)
        .build();
    assert_eq!(sim.geometry().num_blocks(), blocks);
    let out = sim.run(StopCondition::Writes(20_000_000));
    assert_eq!(out.writes_issued, 20_000_000);
    assert_eq!(
        out.usable, 1.0,
        "no failures expected this early at 1e8 endurance"
    );
    // The mapping machinery really ran: the gap rotated ~200k positions.
    assert!(sim.controller().device().stats().writes > out.writes_issued);
}
