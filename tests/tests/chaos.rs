//! Degraded-mode chaos integration: quarantine remap invisibility,
//! post-quarantine read service across every scheme stack, and the
//! bounded transient-read retry contract.

use wl_reviver::sim::{EccKind, SchemeKind};
use wlr_mc::{BankChaos, FaultPlan, McFrontend, McReadError, McStopPolicy, McStopReason};
use wlr_trace::{UniformWorkload, Workload};

const BLOCKS: u64 = 1 << 12;

/// Every scheme stack the equivalence suite sweeps, by the same names.
fn stacks() -> Vec<(&'static str, SchemeKind)> {
    vec![
        ("ecc", SchemeKind::EccOnly),
        ("sg", SchemeKind::StartGapOnly),
        ("sr", SchemeKind::SecurityRefreshOnly),
        ("freep", SchemeKind::Freep { reserve_frac: 0.1 }),
        ("lls", SchemeKind::Lls),
        ("reviver-sg", SchemeKind::ReviverStartGap),
        ("reviver-sr", SchemeKind::ReviverSecurityRefresh),
        ("reviver-tiled", SchemeKind::ReviverTiledStartGap),
        ("reviver-sr2", SchemeKind::ReviverTwoLevelSecurityRefresh),
    ]
}

/// With no faults firing, the degraded-mode remap layer (logical
/// encoding, quarantine steering hooks, substitute election) must be
/// bit-invisible: identical tick streams and per-bank end states as a
/// plain run — across seeds, and with wear steering layered on top.
#[test]
fn quarantine_remap_is_bit_identical_to_no_fault_run() {
    for seed in [3, 17, 91] {
        for steering in [false, true] {
            let run = |degraded: bool| {
                let mut mc = McFrontend::builder()
                    .banks(4)
                    .total_blocks(BLOCKS)
                    .endurance_mean(1e9)
                    .steering(steering)
                    .degraded(degraded)
                    .stop_policy(McStopPolicy::Quorum(1.0))
                    .seed(seed)
                    .build()
                    .unwrap();
                let mut w = UniformWorkload::new(BLOCKS, seed);
                mc.run(&mut w, 40_000)
            };
            let on = run(true);
            let off = run(false);
            assert_eq!(on.quarantines, 0, "no fault was injected");
            assert_eq!(on.redirected, 0);
            assert_eq!(on.ticks, off.ticks, "seed={seed} steering={steering}");
            assert_eq!(on.issued, off.issued);
            for (x, y) in on.banks.iter().zip(&off.banks) {
                assert_eq!(
                    x.fingerprint, y.fingerprint,
                    "seed={seed} steering={steering}: bank {} diverged",
                    x.bank
                );
            }
        }
    }
}

/// Kill a bank under every scheme stack: the array keeps serving at
/// N−1, the dead bank's live lines migrate, and afterwards *reads*
/// return the migrated contents — both the rescued directory lines and
/// the healthy banks' own lines.
#[test]
fn post_quarantine_reads_return_migrated_contents_across_all_stacks() {
    for (name, scheme) in stacks() {
        let mut mc = McFrontend::builder()
            .banks(4)
            .total_blocks(BLOCKS)
            .endurance_mean(1e9)
            .scheme(scheme)
            .verify_integrity(true)
            .degraded(true)
            .stop_policy(McStopPolicy::Quorum(1.0))
            .seed(29)
            .build()
            .unwrap();
        // Freep reserves pages, shrinking the app-visible space below
        // the raw block count — size the address range to what every
        // bank actually exposes and submit directly (`run` insists on
        // full-space workloads).
        let app = mc
            .banks()
            .iter()
            .map(|b| b.sim().os().app_blocks())
            .min()
            .unwrap();
        let mut w = UniformWorkload::new(app * 4, 29);
        mc.inject_chaos(2, BankChaos::KillAfter(128));
        mc.with_pipeline(|m| {
            for _ in 0..25_000 {
                m.submit(w.next_write().index());
            }
        });
        let out = mc.finish();
        assert_eq!(out.stop, McStopReason::TraceComplete, "{name}: serves N-1");
        assert_eq!(out.quarantines, 1, "{name}");
        assert_eq!(out.dropped, 0, "{name}: degraded mode never drops");
        assert!(out.conserves_writes(), "{name}: {out:?}");
        assert!(out.migrated_lines > 0, "{name}: nothing migrated");

        let img = mc.quarantine_image().unwrap();
        assert!(img.dead[2], "{name}");
        assert!(!img.directory.is_empty(), "{name}");
        for &(global, tag) in &img.directory {
            assert_eq!(
                mc.read(global),
                Ok(Some(tag)),
                "{name}: directory line {global:#x} lost its contents"
            );
        }
        for bank in [0usize, 1, 3] {
            let lines = mc.banks()[bank].sim().tracked_lines();
            assert!(!lines.is_empty(), "{name}: bank {bank} tracked nothing");
            for &(local, tag) in lines.iter().take(16) {
                let global = mc.map().join(bank as u64, local);
                assert_eq!(
                    mc.read(global),
                    Ok(Some(tag)),
                    "{name}: healthy bank {bank} line {local:#x}"
                );
            }
        }
    }
}

/// The bounded-retry contract, across retry budgets: a burst within the
/// budget is absorbed, a burst past it surfaces a typed error carrying
/// exactly `limit + 1` attempts, and the counters account for both.
#[test]
fn transient_retry_budget_is_exact_across_limits() {
    for limit in [1u32, 2, 4] {
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(BLOCKS)
            .endurance_mean(1e9)
            .ecc(EccKind::Ecp(0))
            .verify_integrity(true)
            .degraded(true)
            .retry_limit(limit)
            .retry_backoff(1)
            .stop_policy(McStopPolicy::Quorum(1.0))
            .seed(61)
            .build()
            .unwrap();
        let mut w = UniformWorkload::new(BLOCKS, 61);
        mc.run(&mut w, 5_000);
        let (local, tag) = mc.banks()[1].sim().tracked_lines()[0];
        let global = mc.map().join(1, local);

        mc.arm_bank_faults(1, FaultPlan::new().transient_read_burst(0, limit as u64));
        assert_eq!(
            mc.read(global),
            Ok(Some(tag)),
            "limit={limit}: a burst inside the budget is absorbed"
        );
        mc.arm_bank_faults(
            1,
            FaultPlan::new().transient_read_burst(0, 8 + limit as u64),
        );
        assert_eq!(
            mc.read(global),
            Err(McReadError::Transient {
                bank: 1,
                attempts: limit + 1
            }),
            "limit={limit}: an over-budget burst surfaces typed"
        );
        let out = mc.finish();
        assert!(
            out.read_retries >= (2 * limit) as u64,
            "limit={limit}: {out:?}"
        );
        assert_eq!(out.retry_exhausted, 1, "limit={limit}");
    }
}
