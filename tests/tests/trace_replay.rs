//! Trace-driven simulation, end to end: recording a workload to a `WLTR`
//! file and replaying it must drive the simulator to the *identical*
//! final state — the property that lets real Pin traces substitute for
//! the synthetic generators.

use wl_reviver::sim::{SchemeKind, StopCondition};
use wlr_tests::scenario::checked_sim;
use wlr_trace::{Benchmark, TraceWorkload, TraceWriter};

fn trace_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("wlr-integration-traces");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn replayed_trace_reproduces_the_generated_run_exactly() {
    let blocks = 1u64 << 10;
    let records = 400_000u64;
    let path = trace_path("ocean.wltr");

    // Record a slice of the ocean workload.
    let mut src = Benchmark::Ocean.build(blocks, 77);
    let mut w = TraceWriter::create(&path, blocks).unwrap();
    w.record_from(&mut src, records).unwrap();
    w.finish().unwrap();

    // Run A: directly from a fresh generator.
    let mut direct = checked_sim(SchemeKind::ReviverStartGap, 5)
        .workload(Benchmark::Ocean.build(blocks, 77))
        .build();
    direct.run(StopCondition::Writes(records));

    // Run B: from the recorded trace.
    let mut replay = checked_sim(SchemeKind::ReviverStartGap, 5)
        .workload(TraceWorkload::load(&path).unwrap())
        .build();
    replay.run(StopCondition::Writes(records));

    // Identical inputs + identical seeds = identical final state.
    assert_eq!(
        direct.controller().device().dead_blocks(),
        replay.controller().device().dead_blocks()
    );
    assert_eq!(
        direct.controller().device().stats(),
        replay.controller().device().stats()
    );
    assert_eq!(direct.os().retired_pages(), replay.os().retired_pages());
    assert_eq!(direct.verify_all(), 0);
    assert_eq!(replay.verify_all(), 0);

    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_loops_extend_the_run_beyond_one_pass() {
    let blocks = 1u64 << 10;
    let path = trace_path("short.wltr");
    let mut src = Benchmark::Fft.build(blocks, 3);
    let mut w = TraceWriter::create(&path, blocks).unwrap();
    w.record_from(&mut src, 10_000).unwrap();
    w.finish().unwrap();

    let trace = TraceWorkload::load(&path).unwrap();
    assert_eq!(trace.records_per_lap(), 10_000);
    let mut sim = checked_sim(SchemeKind::ReviverStartGap, 9)
        .workload(trace)
        .build();
    // 5 laps of the trace (the paper's "program runs multiple times").
    sim.run(StopCondition::Writes(50_000));
    assert_eq!(sim.verify_all(), 0);
    std::fs::remove_file(&path).ok();
}
