//! The OS boundary, end to end: exception-driven page retirement, rare
//! failure reports, LLS's explicit page requests, and retirement copies
//! flowing through the controller.

use wl_reviver::sim::{SchemeKind, StopCondition};
use wlr_tests::scenario::{checked_sim, fast_sim};

#[test]
fn reviver_reports_once_per_page_not_per_failure() {
    let mut sim = fast_sim(SchemeKind::ReviverStartGap, 31).build();
    sim.run(StopCondition::DeadFraction(0.10));
    let failures = sim.controller().device().dead_blocks();
    let reports = sim.os().failure_reports();
    assert!(failures > 200, "need a deep run (got {failures} failures)");
    // One 64-block page yields ~60 virtual shadows, so reports should be
    // roughly failures/60 — demand "far fewer" with slack for timing.
    assert!(
        reports * 20 < failures,
        "too many OS interruptions: {reports} reports for {failures} failures"
    );
}

#[test]
fn baseline_reports_every_failure() {
    let mut sim = fast_sim(SchemeKind::EccOnly, 32).build();
    sim.run(StopCondition::UsableBelow(0.90));
    let reports = sim.os().failure_reports();
    let retired = sim.os().retired_pages();
    assert_eq!(reports, retired, "every report retires a page");
    assert!(reports > 5, "run should have produced several failures");
}

#[test]
fn reviver_usable_space_tracks_retired_pages_exactly() {
    let mut sim = fast_sim(SchemeKind::ReviverStartGap, 33).build();
    sim.run(StopCondition::DeadFraction(0.08));
    let bpp = sim.geometry().blocks_per_page();
    let expect = (sim.geometry().num_blocks() - sim.os().retired_pages() * bpp) as f64
        / sim.geometry().num_blocks() as f64;
    assert!((sim.usable_fraction() - expect).abs() < 1e-12);
}

#[test]
fn lls_uses_explicit_os_support() {
    let mut sim = fast_sim(SchemeKind::Lls, 34).build();
    sim.run(StopCondition::DeadFraction(0.04));
    let ctl = sim.controller().as_lls().expect("scheme is LLS");
    assert!(ctl.chunks_acquired() >= 1, "LLS should have taken a chunk");
    // Chunk retirements are requests, not failure reports.
    assert!(
        sim.os().retired_pages() > sim.os().failure_reports(),
        "chunk pages must come from explicit requests"
    );
}

#[test]
fn retirement_copies_wear_the_pcm() {
    // The data relocation the OS performs on retirement is real traffic:
    // compare device write counts against software writes issued.
    let mut sim = checked_sim(SchemeKind::EccOnly, 35)
        .os_reserve_pages(4)
        .build();
    sim.run(StopCondition::UsableBelow(0.95));
    let device_writes = sim.controller().device().stats().writes;
    assert!(
        device_writes > sim.writes_issued(),
        "retirement copies should add device writes: {device_writes} vs {}",
        sim.writes_issued()
    );
    assert_eq!(sim.verify_all(), 0, "relocation must preserve data");
}

#[test]
fn os_reserve_pool_absorbs_early_retirements() {
    let mut sim = fast_sim(SchemeKind::EccOnly, 36)
        .os_reserve_pages(8)
        .build();
    sim.run(StopCondition::Writes(400_000));
    // While the pool lasts, the application footprint is intact.
    if sim.os().retired_pages() <= 8 {
        assert_eq!(
            sim.os().mapped_app_pages(),
            sim.os().app_pages(),
            "footprint should be intact while the pool absorbs retirements"
        );
    }
}
