//! Crash-recovery oracle: power loss at inconvenient moments must never
//! lose committed data or corrupt the revival indirection.
//!
//! The model is a *freeze* crash: the injected power cut drops the write
//! in flight and everything after it, so the persistent image (device
//! contents, stored pointers, the retirement bitmap, the battery-backed
//! migration journal) is exactly what a real cut would leave behind.
//! `Simulation::recover` then rebuilds the controller's volatile state by
//! scanning, the §III-B story, and the integrity oracle — which tracked
//! logical contents *before* the crash — asserts post-recovery
//! equivalence. Reviver stacks additionally run with structural invariant
//! checking (one-step chains, Theorem-3 loop properties) enabled, so a
//! recovery that "works" by luck still fails here.
//!
//! Baseline stacks model fully-persistent metadata (the paper grants
//! them this); they crash only at software-write boundaries, which the
//! boundary sweep below still exercises through the same oracle.
//!
//! The full ≥200-point CrashMonkey-style sweep lives in the release-mode
//! `crash_sweep` bench bin (see EXPERIMENTS.md); this suite keeps a
//! debug-friendly subset plus the targeted torn-metadata windows a blind
//! sweep only hits by luck.

use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{SchemeKind, Simulation, SimulationBuilder, StopCondition, StopReason};
use wlr_pcm::{CrashPoint, FaultPlan};

const BLOCKS: u64 = 1 << 10;
/// Short lifetime (~60k writes) so the failure era — links, switches,
/// retirements, suspensions — is reached quickly even in debug builds.
const ENDURANCE: f64 = 60.0;
const STOP: u64 = 55_000;
const SEED: u64 = 11;

fn rig(scheme: SchemeKind) -> SimulationBuilder {
    Simulation::builder()
        .num_blocks(BLOCKS)
        .endurance_mean(ENDURANCE)
        .gap_interval(5)
        .sr_refresh_interval(5)
        .scheme(scheme)
        .seed(SEED)
        .sample_interval(10_000)
        .verify_integrity(true)
        .check_invariants(true)
}

/// Every registered stack, flagged by whether it has a real recovery
/// path (reviver stacks crash at device-write granularity; baselines at
/// software-write boundaries).
fn all_schemes() -> Vec<(&'static str, SchemeKind, bool)> {
    SchemeRegistry::global()
        .iter()
        .map(|s| (s.name, s.kind, s.revivable))
        .collect()
}

/// Crashes a reviver stack at device-write index `k`, recovers, finishes
/// the run, and asserts the oracle stayed clean throughout.
fn crash_and_recover(label: &str, scheme: SchemeKind, k: u64) -> bool {
    let plan = FaultPlan::new().power_loss_at_write(k);
    let mut sim = rig(scheme).fault_plan(plan).build();
    let out = sim.run(StopCondition::Writes(STOP));
    let fired = out.reason == StopReason::PowerLoss;
    if fired {
        let report = sim.recover();
        assert!(
            !report.suspended || sim.controller().suspended(),
            "{label} @{k}: recovery says suspended but controller is not"
        );
        assert_eq!(
            sim.verify_all(),
            0,
            "{label} @{k}: logical contents diverged across the crash"
        );
        sim.run(StopCondition::Writes(STOP));
    }
    assert_eq!(
        sim.verify_all(),
        0,
        "{label} @{k}: mismatch after post-recovery run"
    );
    assert_eq!(sim.integrity_errors(), 0, "{label} @{k}: online violations");
    fired
}

/// Reboots a baseline stack at software-write boundary `k` (its metadata
/// is modeled persistent) and asserts the oracle across the reboot.
fn boundary_crash(label: &str, scheme: SchemeKind, k: u64) {
    let mut sim = rig(scheme).build();
    let out = sim.run(StopCondition::Writes(k));
    if out.reason == StopReason::ConditionMet {
        sim.recover();
        assert_eq!(sim.verify_all(), 0, "{label} @{k}: reboot lost data");
        sim.run(StopCondition::Writes(STOP));
    }
    assert_eq!(sim.verify_all(), 0, "{label} @{k}: mismatch at end of run");
}

#[test]
fn crash_sweep_recovers_every_stack() {
    // Crash points from the healthy era through deep wear-out. The
    // release-mode `crash_sweep` bin widens this to hundreds of points.
    let mut fired = 0u64;
    for (label, scheme, is_reviver) in all_schemes() {
        for &k in &[20_000u64, 32_000, 44_000] {
            if is_reviver {
                if crash_and_recover(label, scheme, k) {
                    fired += 1;
                }
            } else {
                boundary_crash(label, scheme, k);
                fired += 1;
            }
        }
    }
    assert!(fired >= 20, "only {fired} crash points actually fired");
}

#[test]
fn targeted_crash_points_recover() {
    // The torn-metadata windows: mid-switch, mid-migration, mid-retire,
    // mid-link. A write-index sweep hits these only by luck; the named
    // crash points pin them deterministically.
    let points = [
        ("mid-switch", CrashPoint::MidSwitch),
        ("mid-migration", CrashPoint::MidMigration),
        ("mid-retire", CrashPoint::MidRetire),
        ("mid-link", CrashPoint::MidLink),
    ];
    let mut fired = 0u64;
    for (name, point) in points {
        for occurrence in [0u64, 2] {
            let plan = FaultPlan::new().power_loss_at_point(point, occurrence);
            let mut sim = rig(SchemeKind::ReviverStartGap).fault_plan(plan).build();
            let out = sim.run(StopCondition::Writes(STOP));
            if out.reason != StopReason::PowerLoss {
                continue; // the occurrence never happened in this run
            }
            fired += 1;
            sim.recover();
            assert_eq!(
                sim.verify_all(),
                0,
                "{name}#{occurrence}: data diverged across the crash"
            );
            sim.run(StopCondition::Writes(STOP));
            assert_eq!(
                sim.verify_all(),
                0,
                "{name}#{occurrence}: mismatch after resuming"
            );
        }
    }
    assert!(fired >= 6, "only {fired}/8 targeted crash points fired");
}

#[test]
fn torn_switch_is_repaired_on_recovery() {
    // A cut between the two pointer writes of a virtual-shadow switch
    // leaves both blocks claiming the same shadow; recovery must detect
    // the collision and reassign the stale claimant (not drop data).
    let plan = FaultPlan::new().power_loss_at_point(CrashPoint::MidSwitch, 0);
    let mut sim = rig(SchemeKind::ReviverStartGap).fault_plan(plan).build();
    let out = sim.run(StopCondition::Writes(STOP));
    assert_eq!(
        out.reason,
        StopReason::PowerLoss,
        "run ended without a switch ever happening"
    );
    let report = sim.recover();
    assert!(
        report.torn_switch_repairs >= 1,
        "mid-switch crash produced no torn-switch repair: {report:?}"
    );
    assert_eq!(sim.verify_all(), 0, "torn-switch repair lost data");
    sim.run(StopCondition::Writes(STOP));
    assert_eq!(sim.verify_all(), 0, "post-repair run corrupted data");
}

#[test]
fn recovery_reports_scan_and_replay_costs() {
    // The recovery-cost accounting the `robustness` bench bin reports:
    // a mid-life crash must actually scan retired pages and recover the
    // links that existed before the cut.
    let plan = FaultPlan::new().power_loss_at_write(30_000);
    let mut sim = rig(SchemeKind::ReviverStartGap).fault_plan(plan).build();
    let out = sim.run(StopCondition::Writes(STOP));
    assert_eq!(out.reason, StopReason::PowerLoss);
    let links_before = sim
        .controller()
        .as_reviver()
        .expect("reviver stack")
        .linked_blocks();
    let report = sim.recover();
    assert!(report.blocks_scanned > 0, "recovery scanned nothing");
    assert!(
        report.links_recovered + report.torn_links_dropped >= links_before,
        "recovery dropped links on the floor: {report:?} vs {links_before} live"
    );
    assert_eq!(sim.verify_all(), 0);
}

#[test]
fn silent_and_reported_failures_converge() {
    // The paper's caveat: a failure is only *sometimes* reported. A
    // device that conceals a write failure (reports Ok, block dead) must
    // steer the system to the same retired-page set as one that reports
    // it immediately — the failure surfaces on the next touch and takes
    // the same retirement path. Wear leveling is quiesced (huge ψ) and
    // organic endurance pushed out of reach so the injected fault is the
    // only failure and device-write indices align with software writes.
    for (fault_seed, k) in [(1u64, 3_000u64), (2, 7_000), (3, 12_000)] {
        let quiet = |scheme| {
            Simulation::builder()
                .num_blocks(BLOCKS)
                .endurance_mean(1e9)
                .gap_interval(1_000_000)
                .sr_refresh_interval(1_000_000)
                .scheme(scheme)
                .seed(SEED + fault_seed)
                .verify_integrity(true)
                .check_invariants(true)
        };

        // Silent run: the k-th device write kills its block, reports Ok.
        let plan = FaultPlan::new().silent_failure_at_write(k);
        let mut silent = quiet(SchemeKind::ReviverStartGap).fault_plan(plan).build();
        silent.run(StopCondition::Writes(20_000));
        let killed = {
            let log = silent.controller().device().silent_failures();
            assert_eq!(log.len(), 1, "silent fault never fired");
            log[0]
        };
        assert_eq!(silent.verify_all(), 0, "silent failure corrupted data");
        let silent_retired: Vec<_> = silent.os().retired_iter().collect();
        assert!(
            !silent_retired.is_empty(),
            "concealed failure was never discovered"
        );

        // Reported run: same workload, same block killed at the same
        // write boundary — but visibly, so the very next write to it
        // reports. (Before the fault, no failures and no migrations run,
        // so device-write index k is software write k.)
        let mut reported = quiet(SchemeKind::ReviverStartGap).build();
        reported.run(StopCondition::Writes(k));
        reported
            .controller_mut()
            .as_reviver_mut()
            .expect("reviver stack")
            .inject_dead(killed);
        reported.run(StopCondition::Writes(20_000));
        assert_eq!(reported.verify_all(), 0, "reported failure corrupted data");
        let reported_retired: Vec<_> = reported.os().retired_iter().collect();

        assert_eq!(
            silent_retired, reported_retired,
            "seed {fault_seed}: silent and reported runs retired different pages"
        );
    }
}

#[test]
fn transient_read_errors_interact_with_ecc() {
    // Soft read errors are absorbed by ECC headroom where available and
    // surfaced (retryable) where not — never corrupting logical data.
    let plan = FaultPlan::new().seeded_transient_reads(SEED, 40, 0, 60_000);
    let mut sim = rig(SchemeKind::ReviverStartGap).fault_plan(plan).build();
    sim.run(StopCondition::Writes(STOP));
    let counters = sim
        .controller()
        .device()
        .fault_counters()
        .expect("fault plan configured");
    assert!(
        counters.transients_corrected + counters.transients_uncorrectable > 0,
        "no transient read ever fired"
    );
    assert_eq!(sim.verify_all(), 0, "transient reads corrupted data");
    assert_eq!(sim.integrity_errors(), 0);
}

#[test]
fn double_crash_recovers_twice() {
    // A second cut while the first recovery's effects are still settling
    // (journal replays, heals) must be just as recoverable.
    let plan = FaultPlan::new()
        .power_loss_at_write(20_000)
        .power_loss_at_write(28_000);
    let mut sim = rig(SchemeKind::ReviverStartGap).fault_plan(plan).build();
    let mut crashes = 0;
    loop {
        let out = sim.run(StopCondition::Writes(STOP));
        if out.reason == StopReason::PowerLoss {
            crashes += 1;
            sim.recover();
            assert_eq!(sim.verify_all(), 0, "crash {crashes}: data diverged");
        } else {
            break;
        }
    }
    assert_eq!(crashes, 2, "both scheduled cuts should fire");
    assert_eq!(sim.verify_all(), 0);
}
