//! SPSC ring properties beyond the unit tests: randomized interleavings
//! of single pushes, batched pushes, single pops and batched pops must
//! behave exactly like an unbounded FIFO restricted to the ring's
//! capacity, across seeds and capacities — and a two-thread pipeline
//! pushing batches through a small ring must deliver every value in
//! order.

use std::collections::VecDeque;
use wlr_base::rng::Rng;
use wlr_base::spsc::ring;

/// Property: against a `VecDeque` model, any interleaving of ring
/// operations preserves FIFO order, capacity bounds and len reporting.
#[test]
fn randomized_interleavings_match_a_fifo_model() {
    for seed in 0..32u64 {
        let mut rng = Rng::stream(seed, 0x51C);
        let capacity = 1usize << (rng.gen_range(6) as usize); // 1..32
        let (mut tx, mut rx) = ring(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        let mut out = Vec::new();
        for _ in 0..4096 {
            match rng.gen_range(4) {
                0 => {
                    let pushed = tx.push(next);
                    assert_eq!(
                        pushed,
                        model.len() < capacity,
                        "push must succeed iff the ring has room (seed {seed})"
                    );
                    if pushed {
                        model.push_back(next);
                        next += 1;
                    }
                }
                1 => {
                    let n = rng.gen_range(8) as usize;
                    let batch: Vec<u64> = (next..next + n as u64).collect();
                    let accepted = tx.push_slice(&batch);
                    assert_eq!(
                        accepted,
                        n.min(capacity - model.len()),
                        "push_slice must fill exactly the free space (seed {seed})"
                    );
                    for &v in &batch[..accepted] {
                        model.push_back(v);
                    }
                    next += accepted as u64;
                }
                2 => {
                    assert_eq!(
                        rx.pop(),
                        model.pop_front(),
                        "pop must yield the model's front (seed {seed})"
                    );
                }
                _ => {
                    out.clear();
                    let n = rx.pop_into(&mut out);
                    assert_eq!(n, out.len());
                    for v in &out {
                        assert_eq!(
                            Some(*v),
                            model.pop_front(),
                            "pop_into must drain in FIFO order (seed {seed})"
                        );
                    }
                    assert!(
                        model.is_empty(),
                        "pop_into must take everything that was in the ring (seed {seed})"
                    );
                }
            }
            assert_eq!(
                rx.len(),
                model.len(),
                "len must track the model (seed {seed})"
            );
            assert_eq!(rx.is_empty(), model.is_empty());
        }
    }
}

/// A producer thread pushing value batches through a deliberately tiny
/// ring while the consumer drains concurrently: every value arrives,
/// exactly once, in order — the front-end/drain-worker contract.
#[test]
fn two_thread_batched_pipeline_delivers_everything_in_order() {
    const TOTAL: u64 = 200_000;
    let (mut tx, mut rx) = ring(64);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut rng = Rng::stream(99, 0x51C);
            let mut sent = 0u64;
            while sent < TOTAL {
                let want = (rng.gen_range(48) + 1).min(TOTAL - sent) as usize;
                let batch: Vec<u64> = (sent..sent + want as u64).collect();
                let mut off = 0;
                while off < batch.len() {
                    off += tx.push_slice(&batch[off..]);
                    if off < batch.len() {
                        std::thread::yield_now();
                    }
                }
                sent += want as u64;
            }
        });
        let mut expected = 0u64;
        let mut buf = Vec::new();
        while expected < TOTAL {
            buf.clear();
            if rx.pop_into(&mut buf) == 0 {
                std::thread::yield_now();
                continue;
            }
            for &v in &buf {
                assert_eq!(v, expected, "values must arrive exactly once, in order");
                expected += 1;
            }
        }
        assert!(rx.is_empty());
    });
}
