//! Registry-completeness suite: every stack the [`SchemeRegistry`]
//! exposes must actually work end to end, so a new backend registered in
//! `crates/core/src/registry.rs` is exercised here with no further
//! wiring. Four contracts per registered stack:
//!
//! 1. **Spec hygiene** — unique names and titles, resolvable bare
//!    counterparts, `spec_for` round-trips every registered kind.
//! 2. **Deterministic build** — two fresh builds of the same spec run to
//!    the same fingerprint (the cheap precondition for the golden table
//!    in `equivalence.rs`).
//! 3. **Snapshot/fork round-trip** — a fork taken mid-life replays to
//!    the same fingerprint as the run it forked from.
//! 4. **Crash point** (revivable stacks) — a power loss mid-life
//!    recovers and finishes the run with a clean integrity oracle.

use wl_reviver::registry::{SchemeRegistry, StackSpec};
use wl_reviver::sim::{Simulation, StopCondition, StopReason};
use wlr_pcm::FaultPlan;

const BLOCKS: u64 = 1 << 9;
const ENDURANCE: f64 = 100.0;
const PSI: u64 = 7;
const SEED: u64 = 11;
/// Deep enough that every stack is in its failure era (mean wear well
/// past endurance/2) without dragging the suite's runtime.
const STOP: u64 = 30_000;

fn sim_for(spec: &StackSpec) -> Simulation {
    Simulation::builder()
        .num_blocks(BLOCKS)
        .endurance_mean(ENDURANCE)
        .gap_interval(PSI)
        .sr_refresh_interval(PSI)
        .scheme(spec.kind)
        .seed(SEED)
        .verify_integrity(true)
        .build()
}

#[test]
fn names_and_titles_are_unique_and_resolvable() {
    let reg = SchemeRegistry::global();
    let mut names = std::collections::HashSet::new();
    let mut titles = std::collections::HashSet::new();
    for spec in reg.iter() {
        assert!(names.insert(spec.name), "duplicate name {}", spec.name);
        assert!(titles.insert(spec.title), "duplicate title {}", spec.title);
        assert!(
            !spec.description.is_empty(),
            "{}: no description",
            spec.name
        );
        // Both spellings resolve to the same spec.
        assert!(std::ptr::eq(reg.get(spec.name).unwrap(), spec));
        assert!(std::ptr::eq(reg.get(spec.title).unwrap(), spec));
    }
    assert!(reg.get("no-such-stack").is_none());
    let err = reg.resolve("no-such-stack").unwrap_err();
    for spec in reg.iter() {
        assert!(
            err.to_string().contains(spec.name),
            "unknown-stack error must list {}",
            spec.name
        );
    }
}

#[test]
fn bare_counterparts_are_registered_and_bare() {
    let reg = SchemeRegistry::global();
    for spec in reg.iter() {
        let Some(bare) = spec.bare else { continue };
        let bare_spec = reg
            .get(bare)
            .unwrap_or_else(|| panic!("{}: bare counterpart {bare} unregistered", spec.name));
        assert!(
            !bare_spec.revivable,
            "{}: bare counterpart {bare} is itself revived",
            spec.name
        );
    }
    assert!(
        reg.revivable().all(|s| s.bare.is_some()),
        "every revived stack names the scheme it revives"
    );
}

#[test]
fn spec_for_round_trips_every_registered_kind() {
    let reg = SchemeRegistry::global();
    for spec in reg.iter() {
        assert_eq!(reg.spec_for(spec.kind).name, spec.name);
    }
}

#[test]
fn resolve_list_splits_and_rejects() {
    let reg = SchemeRegistry::global();
    let picked = reg.resolve_list(" sg , softwear-wlr ,, ").expect("valid");
    assert_eq!(
        picked.iter().map(|s| s.name).collect::<Vec<_>>(),
        ["sg", "softwear-wlr"]
    );
    assert!(reg.resolve_list("sg,bogus").is_err());
}

#[test]
fn every_stack_builds_and_runs_deterministically() {
    for spec in SchemeRegistry::global().iter() {
        let run = || {
            let mut s = sim_for(spec);
            s.run(StopCondition::Writes(STOP));
            assert_eq!(s.verify_all(), 0, "{}: data loss", spec.name);
            s.fingerprint()
        };
        assert_eq!(run(), run(), "{}: non-deterministic build", spec.name);
    }
}

#[test]
fn snapshot_fork_round_trips_every_stack() {
    for spec in SchemeRegistry::global().iter() {
        let mut original = sim_for(spec);
        original.run(StopCondition::Writes(STOP / 2));
        let snap = original.snapshot();

        let mut fork = Simulation::fork(&snap);
        original.run(StopCondition::Writes(STOP));
        fork.run(StopCondition::Writes(STOP));
        assert_eq!(
            fork.fingerprint(),
            original.fingerprint(),
            "{}: fork diverged from the run it forked",
            spec.name
        );
        assert_eq!(fork.verify_all(), 0, "{}: fork lost data", spec.name);
    }
}

#[test]
fn revivable_stacks_recover_through_a_crash_point() {
    for spec in SchemeRegistry::global().revivable() {
        let mut s = Simulation::builder()
            .num_blocks(BLOCKS)
            .endurance_mean(ENDURANCE)
            .gap_interval(PSI)
            .sr_refresh_interval(PSI)
            .scheme(spec.kind)
            .seed(SEED)
            .verify_integrity(true)
            .fault_plan(FaultPlan::new().power_loss_at_write(STOP / 3))
            .build();
        let out = s.run(StopCondition::Writes(STOP));
        assert_eq!(
            out.reason,
            StopReason::PowerLoss,
            "{}: the armed crash point never fired",
            spec.name
        );
        // The crash may land before the first failure, where a scan has
        // nothing to find — the contract here is clean recovery, not cost.
        let _report = s.recover();
        assert_eq!(s.verify_all(), 0, "{}: recovery lost data", spec.name);
        s.run(StopCondition::Writes(STOP));
        assert_eq!(s.verify_all(), 0, "{}: post-crash run corrupted", spec.name);
    }
}

#[test]
fn builder_stack_name_matches_kind_dispatch() {
    for spec in SchemeRegistry::global().iter() {
        let by_name = {
            let mut s = Simulation::builder()
                .num_blocks(BLOCKS)
                .endurance_mean(ENDURANCE)
                .gap_interval(PSI)
                .sr_refresh_interval(PSI)
                .stack(spec.name)
                .seed(SEED)
                .build();
            s.run(StopCondition::Writes(STOP / 2));
            s.fingerprint()
        };
        let by_kind = {
            let mut s = Simulation::builder()
                .num_blocks(BLOCKS)
                .endurance_mean(ENDURANCE)
                .gap_interval(PSI)
                .sr_refresh_interval(PSI)
                .scheme(spec.kind)
                .seed(SEED)
                .build();
            s.run(StopCondition::Writes(STOP / 2));
            s.fingerprint()
        };
        assert_eq!(by_name, by_kind, "{}: stack() ≠ scheme()", spec.name);
    }
}
