//! The paper's Theorems 1–3 as runtime-checked properties, fuzzed across
//! seeds, workloads and wear-leveling schemes.
//!
//! The `check_invariants(true)` configuration makes the framework assert,
//! after every serviced request:
//!
//! * **Theorem 1** — every software-accessible failed block is linked, and
//!   its chain resolves in one step to a healthy shadow (or the block is
//!   on a PA–DA loop and holds no data);
//! * **Theorem 2** — every unlinked reserved PA is in a retired page and
//!   not doubly used;
//! * **Theorem 3** — the scheme never copies data into a mapped block
//!   (checked at migration time).
//!
//! A run completing without panicking *is* the assertion of the theorems;
//! these tests additionally check that the runs exercised the interesting
//! machinery (links, switches, loops, suspensions).

use wl_reviver::sim::{SchemeKind, StopCondition};
use wlr_base::rng::Rng;
use wlr_tests::scenario::{checked_sim, cov_workload};

#[test]
fn theorems_hold_deep_into_failures_start_gap() {
    let mut sim = checked_sim(SchemeKind::ReviverStartGap, 11).build();
    let out = sim.run(StopCondition::DeadFraction(0.20));
    assert!(out.survival <= 0.80 + 1e-9);
    assert!(
        sim.controller().device().dead_blocks() > 150,
        "the run should have accumulated many failures"
    );
}

#[test]
fn theorems_hold_deep_into_failures_security_refresh() {
    let mut sim = checked_sim(SchemeKind::ReviverSecurityRefresh, 12).build();
    sim.run(StopCondition::DeadFraction(0.18));
    assert!(sim.controller().device().dead_blocks() > 150);
}

#[test]
fn machinery_is_actually_exercised() {
    // A deep run must have linked, switched, looped and suspended; a run
    // that never hits those paths wouldn't be testing the theorems.
    let mut sim = checked_sim(SchemeKind::ReviverStartGap, 13).build();
    sim.run(StopCondition::DeadFraction(0.18));
    let counters = sim
        .controller()
        .as_reviver()
        .expect("scheme is the reviver")
        .counters();
    assert!(counters.links > 100, "links: {}", counters.links);
    assert!(counters.switches > 0, "switches: {}", counters.switches);
    assert!(
        counters.spare_grants > 1,
        "grants: {}",
        counters.spare_grants
    );
}

/// Deterministic fuzz over (seed, cov) cases for one scheme.
fn fuzz_scheme(scheme: SchemeKind, stream: u64, cases: u64, max_cov: f64, dead: f64) {
    let mut rng = Rng::stream(0x7E03, stream);
    for _ in 0..cases {
        let seed = rng.gen_range(1_000_000);
        let cov = 0.5 + rng.gen_f64() * (max_cov - 0.5);
        let blocks = 1 << 10;
        let mut sim = checked_sim(scheme, seed)
            .workload(cov_workload(blocks, cov, seed))
            .build();
        sim.run(StopCondition::DeadFraction(dead));
        assert_eq!(
            sim.verify_all(),
            0,
            "data loss for {scheme:?} seed {seed} cov {cov}"
        );
    }
}

/// Random seeds and skews: no invariant violation, no data loss, for
/// WL-Reviver over Start-Gap.
#[test]
fn fuzzed_start_gap() {
    fuzz_scheme(SchemeKind::ReviverStartGap, 0, 6, 20.0, 0.04);
}

/// Same for Security Refresh: the framework is scheme-agnostic.
#[test]
fn fuzzed_security_refresh() {
    fuzz_scheme(SchemeKind::ReviverSecurityRefresh, 1, 6, 20.0, 0.04);
}

/// The extensions hold to the same bar: region-tiled Start-Gap…
#[test]
fn fuzzed_tiled_start_gap() {
    fuzz_scheme(SchemeKind::ReviverTiledStartGap, 2, 3, 12.0, 0.03);
}

/// …and the stacked two-level Security Refresh.
#[test]
fn fuzzed_two_level_sr() {
    fuzz_scheme(SchemeKind::ReviverTwoLevelSecurityRefresh, 3, 3, 12.0, 0.03);
}
