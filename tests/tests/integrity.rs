//! End-to-end data-integrity oracle: after millions of writes with
//! organic failures, migrations, shadow redirections, suspensions and
//! page retirements, every application address that the OS still maps
//! must read back the last value written to it.

use wl_reviver::sim::{SchemeKind, StopCondition};
use wlr_tests::scenario::{checked_sim, cov_workload};

fn run_integrity(scheme: SchemeKind, seed: u64, stop: StopCondition) {
    let mut sim = checked_sim(scheme, seed).build();
    let out = sim.run(stop);
    assert!(out.writes_issued > 10_000, "run too short to be meaningful");
    assert_eq!(
        sim.integrity_errors(),
        0,
        "online integrity violations under {scheme:?}"
    );
    assert_eq!(
        sim.verify_all(),
        0,
        "final read-back mismatches under {scheme:?}"
    );
}

#[test]
fn reviver_start_gap_preserves_data_to_deep_wearout() {
    run_integrity(
        SchemeKind::ReviverStartGap,
        1,
        StopCondition::DeadFraction(0.10),
    );
}

#[test]
fn reviver_security_refresh_preserves_data_to_deep_wearout() {
    run_integrity(
        SchemeKind::ReviverSecurityRefresh,
        2,
        StopCondition::DeadFraction(0.08),
    );
}

#[test]
fn freep_preserves_data_while_reserve_lasts() {
    run_integrity(
        SchemeKind::Freep { reserve_frac: 0.10 },
        3,
        StopCondition::UsableBelow(0.85),
    );
}

#[test]
fn lls_preserves_data_across_chunk_acquisitions() {
    run_integrity(SchemeKind::Lls, 4, StopCondition::UsableBelow(0.80));
}

#[test]
fn zombie_preserves_data_across_page_acquisitions() {
    run_integrity(SchemeKind::Zombie, 8, StopCondition::UsableBelow(0.90));
}

#[test]
fn plain_start_gap_preserves_data_before_and_after_freeze() {
    run_integrity(
        SchemeKind::StartGapOnly,
        5,
        StopCondition::UsableBelow(0.85),
    );
}

#[test]
fn skewed_workload_integrity_under_reviver() {
    let blocks = 1 << 10;
    let mut sim = checked_sim(SchemeKind::ReviverStartGap, 6)
        .workload(cov_workload(blocks, 8.88, 6))
        .build();
    sim.run(StopCondition::DeadFraction(0.08));
    assert_eq!(sim.verify_all(), 0, "skewed workload corrupted data");
}

#[test]
fn integrity_survives_multiple_run_segments() {
    // Stopping and resuming the same simulation must not confuse the
    // oracle or the controller.
    let mut sim = checked_sim(SchemeKind::ReviverStartGap, 7).build();
    for step in 1..=5u64 {
        sim.run(StopCondition::Writes(step * 50_000));
        assert_eq!(sim.verify_all(), 0, "mismatch after segment {step}");
    }
}
