//! Multi-bank front-end integration: determinism of parallel bank
//! stepping, bit-equivalence with standalone single-bank simulations,
//! shard-aware replay consistency, and global stop policies.

use wl_reviver::sim::SchemeKind;
use wlr_base::rng::Rng;
use wlr_base::{AppAddr, Interleave, InterleaveMap};
use wlr_mc::{McFrontend, McStopPolicy, McStopReason};
use wlr_trace::{shard_records, UniformWorkload};

/// Parallel and sequential bank stepping must produce bit-identical
/// per-bank write counts and fingerprints — while revival is actually
/// firing (low endurance forces failures, retirements and shadow
/// redirection inside the run).
#[test]
fn parallel_stepping_is_bit_identical_to_sequential_under_revival() {
    let run = |parallel: bool| {
        let mut mc = McFrontend::builder()
            .banks(4)
            .total_blocks(1 << 10)
            .endurance_mean(200.0)
            .gap_interval(8)
            .scheme(SchemeKind::ReviverStartGap)
            .parallel(parallel)
            .seed(42)
            .build()
            .unwrap();
        let mut w = UniformWorkload::new(1 << 10, 42);
        mc.run(&mut w, 300_000)
    };
    let par = run(true);
    let seq = run(false);
    assert!(
        par.banks.iter().map(|b| b.retirements).sum::<u64>() > 0,
        "endurance too high: revival never fired, the test is vacuous"
    );
    for (p, s) in par.banks.iter().zip(&seq.banks) {
        assert_eq!(
            p.writes_issued, s.writes_issued,
            "bank {} write counts diverged",
            p.bank
        );
        assert_eq!(
            p.fingerprint, s.fingerprint,
            "bank {} end state diverged",
            p.bank
        );
    }
    assert_eq!(par.issued, seq.issued);
    assert_eq!(par.coalesced, seq.coalesced);
    assert_eq!(par.absorbed, seq.absorbed);
    assert_eq!(par.ticks, seq.ticks);
}

/// Each bank inside the front-end must end bit-identical to a standalone
/// single-bank simulation fed the same issue sequence: the sharding is
/// pure routing, it changes nothing about any bank's own history.
#[test]
fn banks_match_equivalent_standalone_single_bank_runs() {
    let mut mc = McFrontend::builder()
        .banks(4)
        .total_blocks(1 << 10)
        .endurance_mean(200.0)
        .gap_interval(8)
        .scheme(SchemeKind::ReviverStartGap)
        .record_issue(true)
        .seed(7)
        .build()
        .unwrap();
    let mut w = UniformWorkload::new(1 << 10, 7);
    let out = mc.run(&mut w, 300_000);
    assert!(
        out.banks.iter().map(|b| b.retirements).sum::<u64>() > 0,
        "revival never fired"
    );
    for (i, report) in out.banks.iter().enumerate() {
        let log: Vec<AppAddr> = mc.banks()[i]
            .issue_log()
            .expect("issue recording was enabled")
            .iter()
            .map(|&a| AppAddr::new(a))
            .collect();
        assert_eq!(log.len() as u64, report.writes_issued);
        let mut reference = mc.reference_sim(i);
        reference.run_batch(&log);
        assert_eq!(
            reference.fingerprint(),
            report.fingerprint,
            "bank {i} is not bit-identical to its standalone replay"
        );
    }
}

/// A 16-bank front-end must sustain a full request stream to the end of
/// the trace with every write accounted for and every bank alive.
#[test]
fn sixteen_banks_sustain_a_full_trace() {
    let mut mc = McFrontend::builder()
        .banks(16)
        .total_blocks(1 << 14)
        .endurance_mean(1e4)
        .seed(9)
        .build()
        .unwrap();
    let mut w = UniformWorkload::new(1 << 14, 9);
    let out = mc.run(&mut w, 150_000);
    assert_eq!(out.stop, McStopReason::TraceComplete);
    assert_eq!(out.requests, 150_000);
    assert!(out.conserves_writes(), "{out:?}");
    assert_eq!(out.dropped, 0);
    assert_eq!(out.banks.len(), 16);
    for report in &out.banks {
        assert!(report.alive, "bank {} died mid-trace", report.bank);
        assert!(
            report.writes_issued > 0,
            "bank {} never serviced a write",
            report.bank
        );
    }
    assert_eq!(out.wear.blocks(), 1 << 14, "merged wear covers every bank");
}

/// With buffering off and a duplicate-free request stream (so neither
/// absorption nor coalescing can fire), each bank's issue log must equal
/// the pure interleave shard of the request vector: the front-end is
/// exactly shard-aware replay.
#[test]
fn issue_logs_equal_pure_shards_of_the_request_stream() {
    let space = 1u64 << 12;
    let mut requests: Vec<u64> = (0..space).collect();
    Rng::seed_from(33).shuffle(&mut requests);

    let mut mc = McFrontend::builder()
        .banks(8)
        .total_blocks(space)
        .endurance_mean(1e9)
        .interleave(Interleave::Page)
        .write_buffer_lines(0)
        .record_issue(true)
        .seed(33)
        .build()
        .unwrap();
    for &r in &requests {
        mc.submit(r);
    }
    let out = mc.finish();
    assert_eq!(out.absorbed, 0);
    assert_eq!(out.coalesced, 0);
    assert_eq!(out.issued, space);

    let map = InterleaveMap::new(8, 64).unwrap();
    assert_eq!(*mc.map(), map);
    let shards = shard_records(space, &requests, &map).unwrap();
    for (i, shard) in shards.iter().enumerate() {
        assert_eq!(
            mc.banks()[i].issue_log().unwrap(),
            shard.as_slice(),
            "bank {i} issue order differs from the pure shard"
        );
    }
}

/// The first-dead policy halts at the first exhausted bank; a full
/// quorum policy keeps servicing the surviving banks until every bank is
/// gone, so it must always stop strictly later.
#[test]
fn quorum_policy_outlasts_first_dead_policy() {
    let run = |policy: McStopPolicy| {
        let mut mc = McFrontend::builder()
            .banks(4)
            .total_blocks(1 << 10)
            .endurance_mean(300.0)
            .scheme(SchemeKind::EccOnly)
            .stop_policy(policy)
            .seed(21)
            .build()
            .unwrap();
        let mut w = UniformWorkload::new(1 << 10, 21);
        mc.run(&mut w, 5_000_000)
    };
    let first = run(McStopPolicy::FirstBankDead);
    assert!(
        matches!(first.stop, McStopReason::BankDead(_)),
        "expected a first-dead stop, got {:?}",
        first.stop
    );
    let quorum = run(McStopPolicy::Quorum(1.0));
    assert_eq!(quorum.stop, McStopReason::QuorumDead(4));
    assert!(
        quorum.requests > first.requests,
        "full-quorum run ({}) must outlast first-dead run ({})",
        quorum.requests,
        first.requests
    );
    assert!(
        quorum.dropped > 0,
        "writes to dead banks must be counted as dropped"
    );
    assert!(quorum.conserves_writes());
    assert!(first.conserves_writes());
}
