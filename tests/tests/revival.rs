//! The headline claims, cross-checked end to end:
//!
//! 1. wear leveling ceases on the first failure without revival, and the
//!    chip's space then collapses;
//! 2. WL-Reviver keeps the scheme migrating arbitrarily deep into
//!    wear-out, without compromising its leveling effect;
//! 3. the framework pays almost nothing while the chip is healthy.

use wl_reviver::sim::{SchemeKind, StopCondition};
use wlr_base::stats::Summary;
use wlr_tests::scenario::{bench_workload, fast_sim};
use wlr_trace::Benchmark;

/// Wear flatness over the visible space: CoV of per-block wear.
fn wear_cov(sim: &wl_reviver::sim::Simulation) -> f64 {
    let n = sim.geometry().num_blocks() as usize;
    let mut s = Summary::new();
    for &w in &sim.controller().device().wear_snapshot()[..n] {
        s.push(w as f64);
    }
    s.cov()
}

#[test]
fn baseline_freezes_on_first_failure_and_collapses() {
    let blocks = 1 << 12;
    let mut sim = fast_sim(SchemeKind::StartGapOnly, 21)
        .workload(bench_workload(Benchmark::Ocean, blocks, 21))
        .build();
    sim.run(StopCondition::UsableBelow(0.70));
    let points = sim.series().points();
    let freeze_at = points
        .iter()
        .find(|p| !p.wl_active)
        .map(|p| p.writes)
        .expect("Start-Gap must freeze before the chip dies");
    let end = points.last().unwrap().writes;
    assert!(end > freeze_at, "chip must outlive the freeze briefly");
    // The frozen chip's total lifetime is a small fraction of what the
    // revived configuration achieves on the same workload ("precipitous"
    // in the paper's words).
    let mut revived = fast_sim(SchemeKind::ReviverStartGap, 21)
        .workload(bench_workload(Benchmark::Ocean, blocks, 21))
        .build();
    let wlr_end = revived.run(StopCondition::UsableBelow(0.70)).writes_issued;
    assert!(
        end * 3 < wlr_end,
        "frozen chip ({end}) should die far before the revived one ({wlr_end})"
    );
}

#[test]
fn reviver_still_levels_after_many_failures() {
    let blocks = 1 << 12;
    let mut sim = fast_sim(SchemeKind::ReviverStartGap, 22)
        .workload(bench_workload(Benchmark::Ocean, blocks, 22))
        .build();
    sim.run(StopCondition::DeadFraction(0.05));
    assert!(sim.controller().wl_active(), "reviver must never freeze");
    assert!(
        sim.controller().device().dead_blocks() > 150,
        "run should be deep into failures"
    );
    // Leveling quality: wear stays flat even though 5% of blocks died.
    let cov = wear_cov(&sim);
    assert!(
        cov < 0.6,
        "wear CoV {cov} too high: leveling effect compromised"
    );
}

#[test]
fn frozen_baseline_wear_is_much_less_flat() {
    let blocks = 1 << 12;
    let run = |scheme| {
        let mut sim = fast_sim(scheme, 23)
            .workload(bench_workload(Benchmark::Mg, blocks, 23))
            .build();
        sim.run(StopCondition::UsableBelow(0.90));
        (wear_cov(&sim), sim.writes_issued())
    };
    let (cov_baseline, _) = run(SchemeKind::StartGapOnly);
    let (cov_wlr, _) = run(SchemeKind::ReviverStartGap);
    assert!(
        cov_wlr < cov_baseline,
        "WLR wear CoV {cov_wlr} should beat frozen baseline {cov_baseline}"
    );
}

#[test]
fn reviver_beats_baseline_on_every_benchmark() {
    // Figure 5's qualitative content: ECP6-SG-WLR outlives ECP6-SG on all
    // eight benchmarks (paper: +36%…+325%).
    let blocks = 1 << 12;
    for bench in Benchmark::table1() {
        let lifetime = |scheme| {
            let mut sim = fast_sim(scheme, 24)
                .workload(bench_workload(bench, blocks, 24))
                .build();
            sim.run(StopCondition::UsableBelow(0.70)).writes_issued
        };
        let sg = lifetime(SchemeKind::StartGapOnly);
        let wlr = lifetime(SchemeKind::ReviverStartGap);
        assert!(
            wlr as f64 > sg as f64 * 1.2,
            "{bench}: WLR {wlr} should outlive SG {sg} clearly"
        );
    }
}

#[test]
fn healthy_chip_pays_nothing_for_the_framework() {
    let _blocks = 1 << 12;
    let run = |scheme| {
        let mut sim = fast_sim(scheme, 25)
            .endurance_mean(1e12) // never fails
            .build();
        sim.run(StopCondition::Writes(200_000));
        let req = sim.controller().request_stats();
        let _ = scheme;
        req.avg_access_time()
    };
    let base = run(SchemeKind::StartGapOnly);
    let wlr = run(SchemeKind::ReviverStartGap);
    assert!((base - 1.0).abs() < 1e-9, "baseline access time {base}");
    assert!((wlr - 1.0).abs() < 1e-9, "healthy WLR access time {wlr}");
}

#[test]
fn usable_space_is_full_until_first_failure() {
    // §IV-C: "WL-Reviver makes 100% of the PCM space usable before the
    // first failure", unlike FREE-p which pre-reserves.
    let wlr = fast_sim(SchemeKind::ReviverStartGap, 26).build();
    assert_eq!(wlr.usable_fraction(), 1.0);
    let freep = fast_sim(SchemeKind::Freep { reserve_frac: 0.10 }, 26).build();
    assert!(freep.usable_fraction() < 0.95);
}
