//! Event-spine equivalence and replay tests.
//!
//! The reviver emits a [`ReviverEvent`] at every state transition, and
//! attached [`EventSink`]s observe the stream. Events are observability,
//! not behavior: this suite proves that attaching sinks — the zero-cost
//! no-op, the counter fold, the incremental invariant checker — leaves
//! every golden fingerprint from `equivalence.rs` bit-identical, and
//! that the recorded stream is *complete*: replaying it through a fresh
//! [`ReviverCounters`] fold reconstructs the controller's own counters
//! exactly.

use wl_reviver::metrics::TimeSeries;
use wl_reviver::sim::{Outcome, SchemeKind, Simulation, StopCondition};
use wl_reviver::{
    EventSink, InvariantSink, NoopSink, RevivedController, ReviverCounters, ReviverEvent,
};

const BLOCKS: u64 = 1 << 10;
const ENDURANCE: f64 = 300.0;
const PSI: u64 = 7;
const SEED: u64 = 7;
const STOP_WRITES: u64 = 280_000;

/// The reviver rows of `equivalence.rs`'s `GOLDEN` table. Kept in sync
/// by hand; if a golden is intentionally re-captured there, update here.
const REVIVER_GOLDEN: &[(&str, SchemeKind, u64)] = &[
    (
        "reviver-sg",
        SchemeKind::ReviverStartGap,
        0x82a91d5fa092d560,
    ),
    (
        "reviver-sr",
        SchemeKind::ReviverSecurityRefresh,
        0x74ac0550cb0985e1,
    ),
    (
        "reviver-tiled",
        SchemeKind::ReviverTiledStartGap,
        0xacabc7818ee1fc51,
    ),
    (
        "reviver-sr2",
        SchemeKind::ReviverTwoLevelSecurityRefresh,
        0xb9bcda0cdd26c283,
    ),
];

fn golden_sim(scheme: SchemeKind) -> Simulation {
    Simulation::builder()
        .num_blocks(BLOCKS)
        .endurance_mean(ENDURANCE)
        .gap_interval(PSI)
        .sr_refresh_interval(PSI)
        .scheme(scheme)
        .seed(SEED)
        .build()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
}

/// The same bit-exact fingerprint `equivalence.rs` computes.
fn fingerprint(outcome: &Outcome, series: &TimeSeries) -> u64 {
    let mut h = Fnv::new();
    h.u64(outcome.writes_issued);
    h.u64(format!("{:?}", outcome.reason).len() as u64);
    h.f64(outcome.survival);
    h.f64(outcome.usable);
    for p in series.points() {
        h.u64(p.writes);
        h.f64(p.survival);
        h.f64(p.usable);
        h.f64(p.avg_access_time);
        h.u64(p.wl_active as u64);
    }
    h.0
}

/// Runs one golden-config lifetime with the given sinks attached and
/// returns the fingerprint.
fn run_with_sinks(scheme: SchemeKind, sinks: Vec<Box<dyn EventSink>>) -> (u64, Simulation) {
    let mut s = golden_sim(scheme);
    let r = s
        .controller_mut()
        .as_reviver_mut()
        .expect("golden reviver stack");
    for sink in sinks {
        r.add_sink(sink);
    }
    let out = s.run(StopCondition::Writes(STOP_WRITES));
    let fp = fingerprint(&out, s.series());
    (fp, s)
}

/// Dispatching events to a no-op sink must not move a single output bit:
/// every reviver golden from `equivalence.rs` holds with the dispatch
/// path forced on.
#[test]
fn noop_sink_preserves_every_reviver_golden() {
    for &(label, scheme, golden) in REVIVER_GOLDEN {
        let (fp, _) = run_with_sinks(scheme, vec![Box::new(NoopSink)]);
        assert_eq!(
            fp, golden,
            "{label}: attaching a no-op sink changed the run"
        );
    }
}

/// A *stacked* sink pipeline — counter fold plus the incremental
/// invariant checker — is equally behavior-neutral, the counter sink
/// bit-matches the controller's built-in counters, and the tolerant
/// checker stays silent across a healthy lifetime.
#[test]
fn counter_and_invariant_sinks_preserve_goldens_and_agree() {
    for &(label, scheme, golden) in &[REVIVER_GOLDEN[0], REVIVER_GOLDEN[1]] {
        let (fp, s) = run_with_sinks(
            scheme,
            vec![
                Box::new(ReviverCounters::default()),
                Box::new(InvariantSink::new()),
            ],
        );
        assert_eq!(fp, golden, "{label}: stacked sinks changed the run");

        let r = s.controller().as_reviver().expect("reviver stack");
        let folded = r
            .sink::<ReviverCounters>()
            .expect("counter sink still attached");
        assert_eq!(
            *folded,
            r.counters(),
            "{label}: the sink fold diverged from the built-in counters"
        );
        let inv = r.sink::<InvariantSink>().expect("invariant sink attached");
        assert!(inv.checks() > 0, "{label}: the checker never ran");
        assert!(
            inv.violations().is_empty(),
            "{label}: healthy run flagged: {:?}",
            inv.violations()
        );
    }
}

/// A minimal recording sink: the raw event stream, in order.
#[derive(Debug, Default)]
struct RecordingSink(Vec<ReviverEvent>);

impl EventSink for RecordingSink {
    fn on_event(&mut self, _ctl: &RevivedController, ev: &ReviverEvent) {
        self.0.push(*ev);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Stream-completeness property: replaying a recorded event stream
/// through a fresh [`ReviverCounters::apply`] fold reconstructs the
/// controller's own counters exactly. If any emission site bumped a
/// counter without emitting (or vice versa), this diverges.
#[test]
fn replaying_recorded_events_reconstructs_counters() {
    for &(label, scheme, _) in REVIVER_GOLDEN {
        let mut s = Simulation::builder()
            .num_blocks(1 << 9)
            .endurance_mean(100.0)
            .gap_interval(PSI)
            .sr_refresh_interval(PSI)
            .scheme(scheme)
            .seed(SEED)
            .build();
        s.controller_mut()
            .as_reviver_mut()
            .expect("reviver stack")
            .add_sink(Box::new(RecordingSink::default()));
        s.run(StopCondition::Writes(60_000));
        s.simulate_reboot();
        s.run(StopCondition::Writes(80_000));

        let r = s.controller().as_reviver().expect("reviver stack");
        let recorded = r.sink::<RecordingSink>().expect("recorder attached");
        assert!(!recorded.0.is_empty(), "{label}: no events recorded");

        let mut replayed = ReviverCounters::default();
        for ev in &recorded.0 {
            replayed.apply(ev);
        }
        assert_eq!(
            replayed,
            r.counters(),
            "{label}: replaying {} events did not reconstruct the counters",
            recorded.0.len()
        );
    }
}

/// JSONL tracer smoke test: with the `trace-events` feature on, a sink
/// created on a scratch path writes one well-formed line per event.
#[cfg(feature = "trace-events")]
#[test]
fn jsonl_sink_writes_one_line_per_event() {
    use wl_reviver::JsonlSink;

    let path = std::env::temp_dir()
        .join(format!("wlr-events-{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut s = Simulation::builder()
        .num_blocks(1 << 9)
        .endurance_mean(60.0)
        .gap_interval(PSI)
        .sr_refresh_interval(PSI)
        .scheme(SchemeKind::ReviverStartGap)
        .seed(SEED)
        .build();
    s.controller_mut()
        .as_reviver_mut()
        .expect("reviver stack")
        .add_sink(Box::new(
            JsonlSink::create(&path).expect("scratch file opens"),
        ));
    s.run(StopCondition::Writes(30_000));
    drop(s);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "no events traced");
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"event\":"),
            "malformed JSONL line: {line}"
        );
    }
}
