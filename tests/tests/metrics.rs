//! Live-metrics equivalence and round-trip tests (DESIGN.md §8).
//!
//! The serve daemon's observability layer must be a *view*, never a
//! fork: a [`MetricsSink`] folding events into registry atomics has to
//! agree bit-for-bit with the controller's own [`ReviverCounters`], the
//! registry's mergeable histogram snapshots must not care how per-bank
//! publications are grouped, and a `/metrics` scrape must survive a
//! parse round-trip — that is what the smoke harness asserts against.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wl_reviver::sim::{SchemeKind, Simulation, StopCondition};
use wl_reviver::{MetricsSink, RevivalMetrics};
use wlr_base::stats::registry::{
    parse_exposition, HistogramSnapshot, LogHistogram, MetricsRegistry,
};

const BLOCKS: u64 = 1 << 10;
const ENDURANCE: f64 = 300.0;
const PSI: u64 = 7;
const SEED: u64 = 7;
const STOP_WRITES: u64 = 280_000;

/// Every golden stack from `equivalence.rs`: five baselines (no
/// reviver, so nothing to fold) and the four revived schemes.
const STACKS: &[(&str, SchemeKind)] = &[
    ("ecc", SchemeKind::EccOnly),
    ("sg", SchemeKind::StartGapOnly),
    ("sr", SchemeKind::SecurityRefreshOnly),
    ("freep", SchemeKind::Freep { reserve_frac: 0.1 }),
    ("lls", SchemeKind::Lls),
    ("reviver-sg", SchemeKind::ReviverStartGap),
    ("reviver-sr", SchemeKind::ReviverSecurityRefresh),
    ("reviver-tiled", SchemeKind::ReviverTiledStartGap),
    ("reviver-sr2", SchemeKind::ReviverTwoLevelSecurityRefresh),
];

fn golden_sim(scheme: SchemeKind) -> Simulation {
    Simulation::builder()
        .num_blocks(BLOCKS)
        .endurance_mean(ENDURANCE)
        .gap_interval(PSI)
        .sr_refresh_interval(PSI)
        .scheme(scheme)
        .seed(SEED)
        .build()
}

/// The live registry fold agrees with the controller's built-in
/// counters on every golden stack — including across a mid-run reboot,
/// so the recovery replay is folded too. Baseline stacks have no
/// reviver, which is itself part of the contract: the sink attaches
/// only where revival state exists.
#[test]
fn metrics_sink_matches_builtin_counters_on_every_golden_stack() {
    for &(label, scheme) in STACKS {
        let mut s = golden_sim(scheme);
        let registry = MetricsRegistry::new();
        let Some(r) = s.controller_mut().as_reviver_mut() else {
            assert!(
                label.starts_with("ecc")
                    || label.starts_with("sg")
                    || label.starts_with("sr")
                    || label.starts_with("freep")
                    || label.starts_with("lls"),
                "{label}: unexpected non-reviver stack"
            );
            continue;
        };
        r.add_sink(Box::new(MetricsSink::new(RevivalMetrics::register(
            &registry,
        ))));
        s.run(StopCondition::Writes(STOP_WRITES / 2));
        s.simulate_reboot();
        s.run(StopCondition::Writes(STOP_WRITES));

        let r = s.controller().as_reviver().expect("reviver stack");
        let sink = r.sink::<MetricsSink>().expect("metrics sink attached");
        let mut expected = r.counters();
        // Not event-derived (bumped outside the `apply` fold); the
        // registry view documents it as always reading 0.
        expected.reboot_lost_migrations = 0;
        assert_eq!(
            sink.snapshot_counters(),
            expected,
            "{label}: registry fold diverged from the built-in counters"
        );
        assert!(
            expected.links > 0 && expected.reboots > 0,
            "{label}: run too quiet to prove anything \
             (links {}, reboots {})",
            expected.links,
            expected.reboots
        );
    }
}

/// Histogram snapshot merging is associative and order-independent, so
/// it does not matter how (or in what order) per-bank publications are
/// batched into the global view.
#[test]
fn histogram_merge_is_associative_and_order_independent() {
    let per_bank: Vec<HistogramSnapshot> = (0u64..4)
        .map(|bank| {
            let h = LogHistogram::new();
            for i in 0..200 {
                h.record(bank * 1_000 + i * 17 + 1);
            }
            h.snapshot()
        })
        .collect();

    // ((a ⊕ b) ⊕ c) ⊕ d
    let mut left = HistogramSnapshot::new();
    for s in &per_bank {
        left.merge(s);
    }
    // (a ⊕ (b ⊕ (c ⊕ d))), built right-to-left.
    let mut right = HistogramSnapshot::new();
    for s in per_bank.iter().rev() {
        right.merge(s);
    }
    // Pairwise tree: (a ⊕ c) ⊕ (d ⊕ b).
    let mut odd = HistogramSnapshot::new();
    odd.merge(&per_bank[0]);
    odd.merge(&per_bank[2]);
    let mut even = HistogramSnapshot::new();
    even.merge(&per_bank[3]);
    even.merge(&per_bank[1]);
    let mut tree = HistogramSnapshot::new();
    tree.merge(&odd);
    tree.merge(&even);

    for other in [&right, &tree] {
        assert_eq!(left.buckets, other.buckets);
        assert_eq!(left.count, other.count);
        assert_eq!(left.sum, other.sum);
        assert_eq!(left.max, other.max);
    }
    assert_eq!(left.count, 800);
    for q in [0.5, 0.99, 0.999] {
        assert_eq!(left.percentile(q), right.percentile(q));
        assert_eq!(left.percentile(q), tree.percentile(q));
    }
}

/// Concurrent lock-free publication: worker threads hammer the same
/// shared histogram and counter handles; nothing is lost.
#[test]
fn concurrent_publication_loses_nothing() {
    let registry = MetricsRegistry::new();
    let hist = registry.histogram("wlr_test_spans", "test spans");
    let ctr = registry.counter("wlr_test_events_total", "test events");
    let total = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for worker in 0u64..4 {
            let hist = hist.clone();
            let ctr = ctr.clone();
            let total = total.clone();
            scope.spawn(move || {
                let mut sum = 0u64;
                for i in 0..10_000 {
                    let v = worker * 31 + i % 997 + 1;
                    hist.record(v);
                    ctr.inc();
                    sum += v;
                }
                total.fetch_add(sum, Ordering::Relaxed);
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, 40_000);
    assert_eq!(snap.sum, total.load(Ordering::Relaxed));
    assert_eq!(ctr.get(), 40_000);
}

/// A rendered exposition scrape survives `parse_exposition` with every
/// scalar value and histogram aggregate intact — the same round trip
/// `scripts/serve_smoke.sh` performs against the live daemon.
#[test]
fn exposition_round_trips_through_parse() {
    let registry = MetricsRegistry::new();
    registry
        .counter("wlr_requests_total", "requests serviced")
        .add(12_345);
    registry
        .gauge_with("wlr_ring_occupancy", "ring occupancy", &[("bank", "3")])
        .set(17);
    let h = registry.histogram("wlr_span_ns", "span wall-clock");
    for v in [1, 2, 900, 70_000, 70_001] {
        h.record(v);
    }

    let text = registry.render();
    let samples = parse_exposition(&text).expect("render emits parseable exposition");
    let find = |name: &str, labels: &[(&str, &str)]| -> f64 {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (ek, ev))| k == ek && v == ev)
            })
            .unwrap_or_else(|| panic!("sample {name}{labels:?} missing from scrape"))
            .value
    };

    assert_eq!(find("wlr_requests_total", &[]), 12_345.0);
    assert_eq!(find("wlr_ring_occupancy", &[("bank", "3")]), 17.0);
    assert_eq!(find("wlr_span_ns_count", &[]), 5.0);
    assert_eq!(
        find("wlr_span_ns_sum", &[]),
        (1 + 2 + 900 + 70_000 + 70_001) as f64
    );
    assert_eq!(find("wlr_span_ns_bucket", &[("le", "+Inf")]), 5.0);
    // Cumulative bucket counts are monotone and end at the total.
    let mut last = 0.0;
    for s in samples.iter().filter(|s| s.name == "wlr_span_ns_bucket") {
        assert!(s.value >= last, "bucket counts must be cumulative");
        last = s.value;
    }
    assert_eq!(last, 5.0);

    // Parsing is stable: a second render parses to the same samples.
    assert_eq!(
        parse_exposition(&registry.render()).expect("second scrape"),
        samples
    );
}
