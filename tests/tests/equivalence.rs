//! Golden determinism tests for the write engine.
//!
//! The hot-path refactor (dense index tables, batched stepping, the
//! incremental oracle order) must be *behaviour-preserving*: for a fixed
//! seed, every scheme stack must produce a bit-identical `Outcome` and
//! `TimeSeries` to the pre-refactor engine. The goldens below are FNV-1a
//! fingerprints of those structures captured from the seed-state
//! (HashMap-table, per-write-checked) engine; any engine change that
//! alters a single sample bit or the final write count fails here.
//!
//! To re-capture after an *intentional* behaviour change, run:
//!
//! ```text
//! WLR_CAPTURE_GOLDEN=1 cargo test -p wlr-tests --release \
//!     --test equivalence -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use wl_reviver::metrics::TimeSeries;
use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{Outcome, SchemeKind, Simulation, StopCondition};

const BLOCKS: u64 = 1 << 10;
const ENDURANCE: f64 = 300.0;
const PSI: u64 = 7;
const SEED: u64 = 7;
/// Deep into the failure era (mean wear ≈ 0.9× endurance) so links,
/// switches, page retirements and redirection all shape the curves.
const STOP_WRITES: u64 = 280_000;

/// Every registered stack, with its canonical registry name as label.
fn all_schemes() -> Vec<(&'static str, SchemeKind)> {
    SchemeRegistry::global()
        .iter()
        .map(|s| (s.name, s.kind))
        .collect()
}

fn sim(scheme: SchemeKind, verify: bool) -> Simulation {
    Simulation::builder()
        .num_blocks(BLOCKS)
        .endurance_mean(ENDURANCE)
        .gap_interval(PSI)
        .sr_refresh_interval(PSI)
        .scheme(scheme)
        .seed(SEED)
        .verify_integrity(verify)
        .build()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
}

/// Bit-exact fingerprint of an outcome plus the full sampled series.
fn fingerprint(outcome: &Outcome, series: &TimeSeries) -> u64 {
    let mut h = Fnv::new();
    h.u64(outcome.writes_issued);
    h.u64(format!("{:?}", outcome.reason).len() as u64);
    h.f64(outcome.survival);
    h.f64(outcome.usable);
    for p in series.points() {
        h.u64(p.writes);
        h.f64(p.survival);
        h.f64(p.usable);
        h.f64(p.avg_access_time);
        h.u64(p.wl_active as u64);
    }
    h.0
}

/// Goldens captured from the seed-state engine (see module docs).
const GOLDEN: &[(&str, u64)] = &[
    ("ecc", 0xd30e0db011aee6f9),
    ("sg", 0xce1adf2f1ee9f99c),
    ("sr", 0x35e1b9827b561ff0),
    ("softwear", 0x273ecfdfdfdebdf1),
    ("adaptive-sg", 0xcc2d02d5323e64bf),
    ("freep", 0xf70fda549cea7b5c),
    ("lls", 0xcb262ff9cfc1b02a),
    ("zombie", 0x0cec8fb56bbee471),
    ("reviver-sg", 0x82a91d5fa092d560),
    ("reviver-sr", 0x74ac0550cb0985e1),
    ("reviver-tiled", 0xacabc7818ee1fc51),
    ("reviver-sr2", 0xb9bcda0cdd26c283),
    ("softwear-wlr", 0xf2eb2758e9e8e128),
    ("adaptive-sg-wlr", 0xd3c3e532fe11c00d),
];

/// Goldens for integrity-oracle runs (exercises the verification-order
/// path: key picks must match the seed engine's sort-then-index picks).
const GOLDEN_ORACLE: &[(&str, u64)] = &[
    ("reviver-sg", 0x2788c618225eac3e),
    ("reviver-sr", 0xdec389ce3669ea13),
    ("softwear-wlr", 0xff2345f943fd3c54),
    ("adaptive-sg-wlr", 0x3ffca1b8797cc82f),
];

fn run_fingerprint(scheme: SchemeKind, verify: bool) -> u64 {
    let mut s = sim(scheme, verify);
    let out = s.run(StopCondition::Writes(STOP_WRITES));
    if verify {
        assert_eq!(s.verify_all(), 0, "data loss under {scheme:?}");
    }
    fingerprint(&out, s.series())
}

#[test]
fn outcomes_match_seed_engine_goldens() {
    let capture = std::env::var("WLR_CAPTURE_GOLDEN").is_ok_and(|v| v == "1");
    for (label, scheme) in all_schemes() {
        let fp = run_fingerprint(scheme, false);
        if capture {
            println!("    (\"{label}\", {fp:#018x}),");
            continue;
        }
        let golden = GOLDEN
            .iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("no golden for {label}"))
            .1;
        assert_eq!(
            fp, golden,
            "{label}: engine output diverged from the seed-state engine"
        );
    }
}

#[test]
fn oracle_runs_match_seed_engine_goldens() {
    let capture = std::env::var("WLR_CAPTURE_GOLDEN").is_ok_and(|v| v == "1");
    let reg = SchemeRegistry::global();
    for &(label, scheme) in &[
        ("reviver-sg", reg.kind("reviver-sg")),
        ("reviver-sr", reg.kind("reviver-sr")),
        ("softwear-wlr", reg.kind("softwear-wlr")),
        ("adaptive-sg-wlr", reg.kind("adaptive-sg-wlr")),
    ] {
        let fp = run_fingerprint(scheme, true);
        if capture {
            println!("    (\"{label}\", {fp:#018x}), // oracle");
            continue;
        }
        let golden = GOLDEN_ORACLE
            .iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("no oracle golden for {label}"))
            .1;
        assert_eq!(fp, golden, "{label}: oracle-mode run diverged");
    }
}

/// Replay determinism: two identical runs of the same build agree. This
/// guards the fingerprints above against flakiness in the harness itself.
#[test]
fn same_build_is_deterministic() {
    let a = run_fingerprint(SchemeKind::ReviverStartGap, false);
    let b = run_fingerprint(SchemeKind::ReviverStartGap, false);
    assert_eq!(a, b);
}

/// Persistence round-trip for every stack: run deep into the failure
/// era, serialize the durable metadata (reviver stacks), power-cycle,
/// recover, and the rebuilt controller must be behaviorally equal to the
/// live one — same logical contents, durable image intact, and it keeps
/// running cleanly afterwards. Baselines model persistent metadata, so
/// for them the reboot must simply be a no-op behaviorally.
#[test]
fn persistence_round_trip_preserves_state_all_stacks() {
    use wl_reviver::recovery::PersistedMeta;

    for (label, scheme) in all_schemes() {
        // A shorter rig than the golden config: deep wear by 40k writes.
        let mut s = Simulation::builder()
            .num_blocks(1 << 9)
            .endurance_mean(100.0)
            .gap_interval(PSI)
            .sr_refresh_interval(PSI)
            .scheme(scheme)
            .seed(SEED)
            .verify_integrity(true)
            .build();
        s.run(StopCondition::Writes(40_000));
        assert_eq!(s.verify_all(), 0, "{label}: dirty before reboot");

        let live = s.controller().as_reviver().map(|r| {
            let meta = r.persisted_meta();
            // The serialized image parses back to the identical mirror.
            let image = meta.to_bytes();
            let back = PersistedMeta::from_bytes(&image).expect("clean image parses");
            assert_eq!(back.to_bytes(), image, "{label}: lossy serialization");
            (image, r.linked_blocks(), r.spare_pas())
        });

        s.simulate_reboot();

        assert_eq!(s.verify_all(), 0, "{label}: reboot lost logical data");
        if let Some((image, links, spares)) = live {
            let r = s.controller().as_reviver().expect("still a reviver");
            assert_eq!(
                r.persisted_meta().to_bytes(),
                image,
                "{label}: recovery corrupted the durable image"
            );
            assert_eq!(r.linked_blocks(), links, "{label}: links diverged");
            assert_eq!(r.spare_pas(), spares, "{label}: spare pool diverged");
        }

        // The recovered controller keeps servicing the same workload.
        s.run(StopCondition::Writes(50_000));
        assert_eq!(s.verify_all(), 0, "{label}: post-reboot run corrupted");
    }
}

/// A reviver controller rebuilt *from the serialized image alone* (the
/// firmware-scan path, `restore_from`) equals the live controller.
#[test]
fn restore_from_serialized_image_matches_live_state() {
    use wl_reviver::recovery::PersistedMeta;

    let mut s = Simulation::builder()
        .num_blocks(1 << 9)
        .endurance_mean(100.0)
        .gap_interval(PSI)
        .sr_refresh_interval(PSI)
        .scheme(SchemeKind::ReviverStartGap)
        .seed(SEED)
        .verify_integrity(true)
        .build();
    s.run(StopCondition::Writes(40_000));

    let image = s
        .controller()
        .as_reviver()
        .expect("reviver stack")
        .persisted_meta()
        .to_bytes();
    let (links, spares) = {
        let r = s.controller().as_reviver().unwrap();
        (r.linked_blocks(), r.spare_pas())
    };

    let meta = PersistedMeta::from_bytes(&image).expect("clean image parses");
    let report = s
        .controller_mut()
        .as_reviver_mut()
        .expect("reviver stack")
        .restore_from(meta);
    assert!(report.blocks_scanned > 0, "restore scanned nothing");
    assert_eq!(report.links_recovered, links, "links not all recovered");

    let r = s.controller().as_reviver().unwrap();
    assert_eq!(r.linked_blocks(), links);
    assert_eq!(r.spare_pas(), spares);
    assert_eq!(s.verify_all(), 0, "restore_from lost logical data");
}
