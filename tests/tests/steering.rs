//! Wear-aware steering integration: with the knob off (the default) the
//! front-end's logical→physical mapping is the identity and outcomes are
//! bit-identical to a build that never heard of steering; with it on,
//! writes are conserved and a bank-skewed trace ends with visibly more
//! even cross-bank wear than the deterministic mapping gives.

use wlr_base::rng::Rng;
use wlr_base::stats::coefficient_of_variation;
use wlr_base::AppAddr;
use wlr_mc::{McFrontend, McOutcome};
use wlr_trace::Workload;

/// A trace that concentrates traffic on the *banks* rather than on hot
/// blocks: under cache-line interleave (`bank = addr mod banks`) most
/// addresses land on banks 0 and 1, while staying spread over many
/// distinct blocks so queue coalescing cannot flatten the skew.
#[derive(Debug)]
struct BankSkewedWorkload {
    banks: u64,
    len: u64,
    rng: Rng,
}

impl Workload for BankSkewedWorkload {
    fn len(&self) -> u64 {
        self.len
    }

    fn next_write(&mut self) -> AppAddr {
        let r = self.rng.gen_range(100);
        let addr = if r < 85 {
            // Hot: a random row of bank (r mod 2).
            let row = self.rng.gen_range(self.len / self.banks);
            row * self.banks + (r & 1)
        } else {
            self.rng.gen_range(self.len)
        };
        AppAddr::new(addr)
    }

    fn label(&self) -> String {
        "bank-skewed".into()
    }
}

fn run_skewed(steering: bool) -> McOutcome {
    let banks = 8u64;
    let len = 1u64 << 12;
    let mut mc = McFrontend::builder()
        .banks(banks as usize)
        .total_blocks(len)
        .endurance_mean(1e6)
        .steering(steering)
        .steer_epoch(2048)
        .seed(7)
        .build()
        .unwrap();
    let mut w = BankSkewedWorkload {
        banks,
        len,
        rng: Rng::stream(7, 0xBA17),
    };
    mc.run(&mut w, 400_000)
}

/// Per-physical-bank issued-write counts as floats, for CoV computation.
fn bank_load(out: &McOutcome) -> Vec<f64> {
    out.banks.iter().map(|b| b.writes_issued as f64).collect()
}

/// With steering disabled (explicitly or by never mentioning the knob)
/// the run must be bit-identical: same per-bank fingerprints, same
/// latency profile, same counters.
#[test]
fn steering_off_is_bit_identical_to_a_build_without_the_knob() {
    let explicit = {
        let mut mc = McFrontend::builder()
            .banks(8)
            .total_blocks(1 << 12)
            .steering(false)
            .seed(3)
            .build()
            .unwrap();
        let mut w = BankSkewedWorkload {
            banks: 8,
            len: 1 << 12,
            rng: Rng::stream(3, 0xBA17),
        };
        mc.run(&mut w, 200_000)
    };
    let default = {
        let mut mc = McFrontend::builder()
            .banks(8)
            .total_blocks(1 << 12)
            .seed(3)
            .build()
            .unwrap();
        let mut w = BankSkewedWorkload {
            banks: 8,
            len: 1 << 12,
            rng: Rng::stream(3, 0xBA17),
        };
        mc.run(&mut w, 200_000)
    };
    assert_eq!(explicit.issued, default.issued);
    assert_eq!(explicit.coalesced, default.coalesced);
    assert_eq!(explicit.ticks, default.ticks);
    assert_eq!(explicit.latency.p99(), default.latency.p99());
    for (a, b) in explicit.banks.iter().zip(&default.banks) {
        assert_eq!(a.fingerprint, b.fingerprint, "bank {} diverged", a.bank);
        assert_eq!(a.writes_issued, b.writes_issued);
    }
}

/// Steering with an epoch longer than the whole run never rotates the
/// permutation away from the identity, so the outcome must stay
/// bit-identical to the unsteered pipeline — the knob only changes
/// behavior once a rotation actually happens.
#[test]
fn steering_with_an_unreached_epoch_matches_unsteered_bit_for_bit() {
    let steered = {
        let mut mc = McFrontend::builder()
            .banks(8)
            .total_blocks(1 << 12)
            .steering(true)
            .steer_epoch(u64::MAX / 2)
            .seed(5)
            .build()
            .unwrap();
        let mut w = BankSkewedWorkload {
            banks: 8,
            len: 1 << 12,
            rng: Rng::stream(5, 0xBA17),
        };
        mc.run(&mut w, 200_000)
    };
    let unsteered = {
        let mut mc = McFrontend::builder()
            .banks(8)
            .total_blocks(1 << 12)
            .seed(5)
            .build()
            .unwrap();
        let mut w = BankSkewedWorkload {
            banks: 8,
            len: 1 << 12,
            rng: Rng::stream(5, 0xBA17),
        };
        mc.run(&mut w, 200_000)
    };
    assert_eq!(steered.issued, unsteered.issued);
    assert_eq!(steered.latency.p99(), unsteered.latency.p99());
    for (a, b) in steered.banks.iter().zip(&unsteered.banks) {
        assert_eq!(a.fingerprint, b.fingerprint, "bank {} diverged", a.bank);
    }
}

/// On a bank-skewed trace, steering must conserve every write and leave
/// the physical banks' write loads markedly more even than the
/// deterministic mapping does.
#[test]
fn steering_levels_cross_bank_wear_on_a_skewed_trace() {
    let unsteered = run_skewed(false);
    let steered = run_skewed(true);
    assert!(unsteered.conserves_writes());
    assert!(steered.conserves_writes());
    assert_eq!(
        steered.issued, unsteered.issued,
        "steering only reroutes batches; it must not create or lose writes"
    );

    let cov_un = coefficient_of_variation(&bank_load(&unsteered));
    let cov_st = coefficient_of_variation(&bank_load(&steered));
    assert!(
        cov_un > 0.5,
        "the trace must actually skew the banks (unsteered CoV = {cov_un:.3})"
    );
    assert!(
        cov_st <= cov_un,
        "steering must not worsen cross-bank balance (steered {cov_st:.3} vs unsteered {cov_un:.3})"
    );
    assert!(
        cov_st < 0.5 * cov_un,
        "rotating hot logical banks across physical banks should slash the \
         load imbalance (steered {cov_st:.3} vs unsteered {cov_un:.3})"
    );
}
