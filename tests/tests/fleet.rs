//! Snapshot/fork contract tests: the Monte Carlo fleet (and the
//! fork-shared replicate sweeps in the bench harness) are sound only if
//! a forked simulation is indistinguishable from the run it was forked
//! from. Three angles:
//!
//! 1. **Bit-identity** — fork-then-replay equals both continuing the
//!    original run and a fresh run, on every scheme stack, with the
//!    integrity oracle and its verification RNG in the captured state.
//! 2. **Quarantine round-trip** — forking a multi-bank array *after* a
//!    degraded-mode bank death (PR-8) and restoring the quarantine
//!    image replays identically to the surviving original.
//! 3. **Determinism** — the same (snapshot, seed, fault plan) always
//!    yields the same lifetime, across repeated forks.

use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{SchemeKind, Simulation, StopCondition};
use wlr_mc::{BankChaos, McFrontend, McStopPolicy};
use wlr_pcm::FaultPlan;
use wlr_trace::{UniformWorkload, Workload};

/// Every registered stack, with its canonical registry name as label.
fn all_schemes() -> Vec<(&'static str, SchemeKind)> {
    SchemeRegistry::global()
        .iter()
        .map(|s| (s.name, s.kind))
        .collect()
}

fn sim(scheme: SchemeKind) -> Simulation {
    Simulation::builder()
        .num_blocks(1 << 10)
        .endurance_mean(300.0)
        .gap_interval(7)
        .sr_refresh_interval(7)
        .scheme(scheme)
        .seed(7)
        .sample_interval(2_000)
        .verify_integrity(true)
        .build()
}

/// Fork-then-replay must be bit-identical to (a) continuing the
/// original run and (b) a fresh run that never snapshotted, on all nine
/// stacks — the acceptance proof that `snapshot()` captures the *full*
/// observable state (device wear image, leveler state, link tables,
/// spare pool, OS page tables, workload position, verification RNG).
///
/// The snapshot lands at the fourth visible block death, so the failure
/// era (links, chain switches, page retirements, spare harvesting) is
/// active at the fork point on every scheme — but the run has not
/// exhausted its memory yet (bare schemes burn a whole page per death
/// and die at the 16th; re-running an exhausted simulation issues one
/// more write attempt, which would make a fresh single-call run
/// trivially differ).
#[test]
fn fork_then_replay_is_bit_identical_on_all_stacks() {
    for (name, scheme) in all_schemes() {
        let mut original = sim(scheme);
        let warm = original.run(StopCondition::DeadFraction(4.0 / 1024.0));
        assert_eq!(
            warm.reason,
            wl_reviver::sim::StopReason::ConditionMet,
            "{name}: warmup must stop on the death condition"
        );
        let finish_at = original.writes_issued() + 60_000;
        let snap = original.snapshot();
        assert_eq!(snap.writes_issued(), original.writes_issued(), "{name}");

        let cont = original.run(StopCondition::Writes(finish_at));

        let mut forked = Simulation::fork(&snap);
        let fork_out = forked.run(StopCondition::Writes(finish_at));

        let mut fresh = sim(scheme);
        let fresh_out = fresh.run(StopCondition::Writes(finish_at));

        assert_eq!(
            forked.fingerprint(),
            original.fingerprint(),
            "{name}: fork-then-replay diverged from the continued original"
        );
        assert_eq!(
            forked.fingerprint(),
            fresh.fingerprint(),
            "{name}: fork-then-replay diverged from a fresh run"
        );
        assert_eq!(fork_out.writes_issued, cont.writes_issued, "{name}");
        assert_eq!(fork_out.writes_issued, fresh_out.writes_issued, "{name}");
        assert_eq!(
            forked.integrity_errors(),
            original.integrity_errors(),
            "{name}"
        );
        assert_eq!(original.integrity_errors(), 0, "{name}: oracle violated");
        // A second fork from the same snapshot is as good as the first:
        // the snapshot is not consumed or perturbed by forking.
        let mut again = Simulation::fork(&snap);
        again.run(StopCondition::Writes(finish_at));
        assert_eq!(again.fingerprint(), forked.fingerprint(), "{name}");
    }
}

/// Fork a degraded-mode array *after* a bank death: per-bank snapshots
/// plus the persisted `QuarantineImage` must reconstruct a front-end
/// that replays the rest of the trace bit-identically to the surviving
/// original (the serve-restart flow, with O(1) forks in place of
/// wear-image replay).
#[test]
fn snapshot_under_quarantine_round_trips() {
    const BANKS: usize = 4;
    const BLOCKS: u64 = 1 << 12;
    let build = || {
        McFrontend::builder()
            .banks(BANKS)
            .total_blocks(BLOCKS)
            .endurance_mean(1e9)
            .scheme(SchemeKind::ReviverStartGap)
            .verify_integrity(true)
            .degraded(true)
            .stop_policy(McStopPolicy::Quorum(1.0))
            .seed(29)
            .build()
            .unwrap()
    };

    // Phase 1: run the original into a bank death.
    let mut original = build();
    let mut w1 = UniformWorkload::new(BLOCKS, 29);
    original.inject_chaos(2, BankChaos::KillAfter(128));
    original.with_pipeline(|m| {
        for _ in 0..25_000 {
            m.submit(w1.next_write().index());
        }
    });
    let out = original.finish();
    assert_eq!(out.quarantines, 1, "the chaos kill must quarantine bank 2");

    // Freeze: per-bank simulation snapshots + the quarantine image.
    let snaps: Vec<_> = original
        .banks()
        .iter()
        .map(|b| b.sim().snapshot())
        .collect();
    let img = original.quarantine_image().unwrap();
    assert!(img.dead[2]);

    // Restore: a fresh front-end with forked bank sims and the image.
    let mut restored = build();
    for (bank, snap) in snaps.iter().enumerate() {
        *restored.bank_sim_mut(bank) = Simulation::fork(snap);
    }
    restored.restore_quarantine(&img);

    // Phase 2: drive both with the identical divergent stream.
    let mut w2 = UniformWorkload::new(BLOCKS, 77);
    let mut w2b = w2.clone();
    original.with_pipeline(|m| {
        for _ in 0..10_000 {
            m.submit(w2.next_write().index());
        }
    });
    original.finish();
    restored.with_pipeline(|m| {
        for _ in 0..10_000 {
            m.submit(w2b.next_write().index());
        }
    });
    restored.finish();

    for bank in 0..BANKS {
        assert_eq!(
            restored.banks()[bank].sim().fingerprint(),
            original.banks()[bank].sim().fingerprint(),
            "bank {bank} diverged after the quarantine round-trip"
        );
        assert_eq!(
            restored.banks()[bank].sim().integrity_errors(),
            0,
            "bank {bank}: oracle violated after restore"
        );
    }
}

/// The fleet's contract: a (snapshot, seed, fault plan) triple is a pure
/// function of its inputs — every fork of the same snapshot, diverged
/// with the same workload seed and the same fault plan, lives exactly
/// as long and ends in the identical device state.
#[test]
fn same_snapshot_seed_and_fault_plan_yield_same_lifetime() {
    let mut warm = Simulation::builder()
        .num_blocks(1 << 10)
        .endurance_mean(1_500.0)
        .gap_interval(10)
        .sr_refresh_interval(10)
        .scheme(SchemeKind::ReviverStartGap)
        .seed(11)
        .build();
    warm.run(StopCondition::Writes(600_000));
    let snap = warm.snapshot();

    let future = |seed: u64| {
        let mut sim = Simulation::fork(&snap);
        sim.replace_workload(Box::new(UniformWorkload::new(sim.workload_len(), seed)));
        sim.arm_faults(
            FaultPlan::new()
                .seeded_silent_failures(seed, 3, 10_000, 200_000)
                .power_loss_at_write(50_000),
        );
        loop {
            let out = sim.run(StopCondition::DeadFraction(0.30));
            match out.reason {
                wl_reviver::sim::StopReason::PowerLoss => {
                    sim.recover();
                }
                _ => break,
            }
        }
        (sim.writes_issued(), sim.fingerprint())
    };

    let (life_a, fp_a) = future(42);
    let (life_b, fp_b) = future(42);
    assert_eq!(life_a, life_b, "same (snapshot, seed, plan), same lifetime");
    assert_eq!(fp_a, fp_b, "same (snapshot, seed, plan), same end state");
}

/// Regression: a migration whose target died *silently* (device
/// reported Ok, so `write_da` never linked it) used to hit an assert
/// in `fix_chain_after_migration` — the fleet campaign found it with
/// this exact (warmup, workload seed, fault seed) triple. The repair
/// must instead wait for the chain walk to discover the death; the run
/// completes with an intact oracle.
#[test]
fn silently_dead_migration_target_is_left_for_discovery() {
    let mut s = Simulation::builder()
        .num_blocks(1 << 10)
        .endurance_mean(1_000.0)
        .gap_interval(16)
        .sr_refresh_interval(16)
        .scheme(SchemeKind::ReviverStartGap)
        .seed(42)
        .verify_integrity(true)
        .build();
    s.run(StopCondition::Writes(478_489));
    let snap = s.snapshot();
    let mut f = Simulation::fork(&snap);
    let len = f.workload_len();
    f.replace_workload(Box::new(UniformWorkload::new(len, 77)));
    f.arm_faults(FaultPlan::new().seeded_silent_failures(42 ^ (0xF1EE7 + 34), 3, 1_000, 50_000));
    f.run(StopCondition::DeadFraction(0.30));
    assert_eq!(f.integrity_errors(), 0, "revived run must keep its data");
}
