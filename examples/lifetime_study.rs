//! Lifetime study: how write skew and revival interact.
//!
//! For a sweep of write-distribution CoVs (including the paper's eight
//! benchmark values), measures the number of writes the chip sustains
//! before losing 30% of its space under three stacks:
//!
//! * `ECP6`        — error correction only;
//! * `ECP6-SG`     — + Start-Gap, crippled by the first unhidden failure;
//! * `ECP6-SG-WLR` — + WL-Reviver (the paper's Figure 5 configuration).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p wl-reviver --example lifetime_study
//! ```

use wl_reviver::sim::{SchemeKind, Simulation, StopCondition};
use wlr_trace::{CovTargetedWorkload, SpatialMode};

const BLOCKS: u64 = 1 << 13;
const ENDURANCE: f64 = 8_000.0;
const PSI: u64 = 10;

fn lifetime(scheme: SchemeKind, cov: f64, seed: u64) -> u64 {
    let workload =
        CovTargetedWorkload::new(BLOCKS, cov, SpatialMode::Clustered { run_blocks: 64 }, seed);
    let mut sim = Simulation::builder()
        .num_blocks(BLOCKS)
        .endurance_mean(ENDURANCE)
        .gap_interval(PSI)
        .scheme(scheme)
        .workload(workload)
        .seed(seed)
        .build();
    sim.run(StopCondition::UsableBelow(0.70)).writes_issued
}

fn main() {
    println!(
        "writes to lose 30% of a {}-block chip (endurance {:.0}, ψ={PSI})\n",
        BLOCKS, ENDURANCE
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>10}",
        "CoV", "ECP6", "ECP6-SG", "ECP6-SG-WLR", "WLR gain"
    );
    for cov in [0.5, 2.0, 4.15, 8.88, 13.87, 40.87] {
        let none = lifetime(SchemeKind::EccOnly, cov, 7);
        let sg = lifetime(SchemeKind::StartGapOnly, cov, 7);
        let wlr = lifetime(SchemeKind::ReviverStartGap, cov, 7);
        println!(
            "{:>8.2} {:>14} {:>14} {:>14} {:>9.2}x",
            cov,
            none,
            sg,
            wlr,
            wlr as f64 / sg as f64
        );
    }
    println!("\n(the WLR gain column is the paper's Figure 5 comparison)");
}
