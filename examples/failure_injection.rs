//! Failure injection: watch the framework's machinery up close.
//!
//! Drives a `RevivedController` directly (no simulator), injecting dead
//! blocks at increasing ratios and reporting what the paper's Table II
//! measures: average PCM accesses per software request with and without
//! the 32 KB remap cache, plus the framework's link/switch/loop counters.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p wl-reviver --example failure_injection
//! ```

use wl_reviver::controller::{Controller, WriteResult};
use wl_reviver::reviver::RevivedController;
use wlr_base::rng::Rng;
use wlr_base::{Geometry, Pa};
use wlr_pcm::{Ecp, PcmDevice};
use wlr_wl::{RandomizerKind, StartGap};

const BLOCKS: u64 = 1 << 14;

fn build(cache: Option<usize>, seed: u64) -> RevivedController {
    let geo = Geometry::builder().num_blocks(BLOCKS).build().unwrap();
    let device = PcmDevice::builder(geo)
        .extra_blocks(1)
        .endurance_mean(1e12) // no organic failures: we inject them
        .seed(seed)
        .ecc(Box::new(Ecp::ecp6()))
        .build();
    let wl = StartGap::builder(BLOCKS)
        .gap_interval(100)
        .randomizer(RandomizerKind::Feistel { seed })
        .build();
    let mut b = RevivedController::builder(device, Box::new(wl));
    if let Some(bytes) = cache {
        b = b.cache_bytes(bytes);
    }
    b.build()
}

/// Injects dead blocks until `ratio` of the chip has failed, letting the
/// framework discover each failure through a write, and playing the OS
/// when it asks for pages.
fn inject(ctl: &mut RevivedController, ratio: f64, rng: &mut Rng, retired: &mut [bool]) {
    let geo = *ctl.geometry();
    let bpp = geo.blocks_per_page();
    let target = (BLOCKS as f64 * ratio) as u64;
    let mut guard = 0u64;
    while ctl.device().dead_blocks_under(BLOCKS) < target {
        guard += 1;
        assert!(guard < BLOCKS * 64, "injection failed to converge");
        // Kill the block behind a random *accessible* PA, then touch it so
        // the framework links it.
        let pa = Pa::new(rng.gen_range(BLOCKS));
        if retired[(pa.index() / bpp) as usize] {
            continue;
        }
        let da = ctl.wear_leveler().map(pa);
        ctl.inject_dead(da);
        match ctl.write(pa, guard) {
            WriteResult::Ok => {}
            WriteResult::ReportFailure(rep) => {
                let page = geo.page_of(rep);
                retired[page.as_usize()] = true;
                ctl.on_page_retired(page);
            }
            other => unreachable!("unexpected write result without faults: {other:?}"),
        }
    }
}

fn measure(ctl: &mut RevivedController, rng: &mut Rng, retired: &[bool], requests: u64) -> f64 {
    let geo = *ctl.geometry();
    let bpp = geo.blocks_per_page();
    ctl.reset_request_stats();
    let mut done = 0;
    while done < requests {
        let pa = Pa::new(rng.gen_range(BLOCKS));
        if retired[(pa.index() / bpp) as usize] {
            continue;
        }
        if done % 2 == 0 {
            ctl.read(pa);
        } else if ctl.write(pa, done) != WriteResult::Ok {
            continue;
        }
        done += 1;
    }
    ctl.request_stats().avg_access_time()
}

fn main() {
    println!("avg PCM accesses per software request at injected failure ratios\n");
    println!(
        "{:>8} {:>12} {:>12} {:>8} {:>9} {:>7}",
        "failed", "no cache", "32KB cache", "links", "switches", "loops"
    );
    for ratio in [0.05, 0.10, 0.20, 0.30] {
        let mut rng = Rng::seed_from(9);
        let mut plain = build(None, 1);
        let mut retired = vec![false; plain.geometry().num_pages() as usize];
        inject(&mut plain, ratio, &mut rng, &mut retired);
        let t_plain = measure(&mut plain, &mut rng, &retired, 200_000);

        let mut rng2 = Rng::seed_from(9);
        let mut cached = build(Some(32 * 1024), 1);
        let mut retired2 = vec![false; cached.geometry().num_pages() as usize];
        inject(&mut cached, ratio, &mut rng2, &mut retired2);
        let t_cached = measure(&mut cached, &mut rng2, &retired2, 200_000);

        let c = cached.counters();
        println!(
            "{:>7.0}% {:>12.4} {:>12.4} {:>8} {:>9} {:>7}",
            ratio * 100.0,
            t_plain,
            t_cached,
            c.links,
            c.switches,
            cached.loop_blocks()
        );
    }
    println!("\n(compare with the paper's Table II: cached access times sit near 1.0)");
}
