//! Quickstart: revive Start-Gap on a failing PCM chip.
//!
//! Builds a scaled PCM device running ECP6 + Start-Gap under the
//! WL-Reviver framework, drives it with the paper's `ocean` workload until
//! 30% of the space is gone, and prints the usable-space trajectory plus
//! the framework's internal event counters.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p wl-reviver --example quickstart
//! ```

use wl_reviver::sim::{SchemeKind, Simulation, StopCondition};
use wlr_trace::Benchmark;

fn main() {
    let blocks = 1u64 << 14;
    let endurance = 1e4;
    let mut sim = Simulation::builder()
        .num_blocks(blocks)
        .endurance_mean(endurance)
        .gap_interval(10) // scaled ψ; see EXPERIMENTS.md
        .scheme(SchemeKind::ReviverStartGap)
        .workload(Benchmark::Ocean.build(blocks, 42))
        .seed(42)
        .sample_interval(2_000_000)
        .build();

    println!(
        "chip: {} blocks ({} KiB), endurance N({endurance:.0}, CoV 0.2), scheme ECP6-SG-WLR",
        blocks,
        blocks * 64 / 1024,
    );
    println!("workload: ocean (write CoV 4.15), running to 70% usable space…\n");
    println!(
        "{:>14} {:>10} {:>10} {:>12}",
        "writes", "usable", "survival", "avg access"
    );

    let outcome = sim.run(StopCondition::UsableBelow(0.70));
    for p in sim.series() {
        println!(
            "{:>14} {:>9.1}% {:>9.1}% {:>12.4}",
            p.writes,
            p.usable * 100.0,
            p.survival * 100.0,
            p.avg_access_time
        );
    }

    println!(
        "\nstopped after {} writes ({:?})",
        outcome.writes_issued, outcome.reason
    );
    println!(
        "pages retired: {}   OS failure reports: {}   lost writes: {}",
        sim.os().retired_pages(),
        sim.os().failure_reports(),
        sim.lost_writes(),
    );
    println!(
        "dead blocks hidden by the framework: {} ({:.2}% of the chip)",
        sim.controller().device().dead_blocks(),
        sim.controller().visible_dead_fraction() * 100.0
    );
}
