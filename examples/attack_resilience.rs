//! Malicious wear-out attacks vs revival.
//!
//! Start-Gap and Security Refresh were designed against adversaries that
//! hammer a fixed address set; the paper argues WL-Reviver's benefit is
//! largest exactly when writes are most biased (§IV-B names the
//! birthday-paradox attack). This example pits a repeated-address attack
//! and a birthday-paradox attack against the chip with and without
//! revival.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p wl-reviver --example attack_resilience
//! ```

use wl_reviver::sim::{SchemeKind, Simulation, StopCondition};
use wlr_trace::{BirthdayAttack, RepeatAttack, Workload};

const BLOCKS: u64 = 1 << 12;
const ENDURANCE: f64 = 5_000.0;

fn survive(scheme: SchemeKind, attack: Box<dyn Workload>, seed: u64) -> u64 {
    let mut sim = Simulation::builder()
        .num_blocks(BLOCKS)
        .endurance_mean(ENDURANCE)
        .gap_interval(5)
        .scheme(scheme)
        .seed(seed)
        .workload_boxed(attack)
        .build();
    sim.run(StopCondition::UsableBelow(0.85)).writes_issued
}

fn main() {
    println!(
        "writes to lose 15% of a {}-block chip under attack (endurance {:.0})\n",
        BLOCKS, ENDURANCE
    );
    println!(
        "{:<28} {:>14} {:>14} {:>10}",
        "attack", "ECP6-SG", "ECP6-SG-WLR", "gain"
    );

    type AttackFactory = fn(u64) -> Box<dyn Workload>;
    let attacks: Vec<(&str, AttackFactory)> = vec![
        ("repeat-attack (4 addrs)", |s| {
            Box::new(RepeatAttack::new(BLOCKS, 4, s))
        }),
        ("repeat-attack (64 addrs)", |s| {
            Box::new(RepeatAttack::new(BLOCKS, 64, s))
        }),
        ("birthday-attack (16x1000)", |s| {
            Box::new(BirthdayAttack::new(BLOCKS, 16, 1000, s))
        }),
    ];

    for (name, mk) in attacks {
        let sg = survive(SchemeKind::StartGapOnly, mk(3), 3);
        let wlr = survive(SchemeKind::ReviverStartGap, mk(3), 3);
        println!(
            "{:<28} {:>14} {:>14} {:>9.2}x",
            name,
            sg,
            wlr,
            wlr as f64 / sg as f64
        );
    }
}
